// Package metrics aggregates the paper's evaluation measurements across
// repetitions (§V-A runs every experiment 10 times and averages).
package metrics

import (
	"fmt"
	"math"
	"time"

	"github.com/pipeinfer/pipeinfer/internal/engine"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes summary statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String renders "mean ± std".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.Std)
}

// Agg aggregates one experimental condition over repetitions.
type Agg struct {
	Speed      Summary // tokens/second
	TTFT       Summary // seconds
	ITL        Summary // seconds
	Acceptance Summary // fraction
	PerNodeGiB Summary // mean resident GiB per node
	Cancelled  Summary // cancelled runs per generation

	// Memory-pressure protocol counters per run (serving layer, PR 3).
	SpecDrops    Summary // speculative footprints dropped
	Preemptions  Summary // sessions parked (namespace evicted)
	Readmissions Summary // parked sessions readmitted (prefix recompute)

	// Cross-session batching counters per run (serving layer, PR 4).
	BatchedRuns Summary // multi-session pipeline runs launched
	MeanBatch   Summary // realised mean sessions per batched run (incl. prefill-chunk runs)
	RowCancels  Summary // per-session rows masked out of in-flight batches

	// Chunked-prefill counters (serving layer, PR 5).
	PrefillBatchedRuns Summary // batched runs carrying prompt-prefill chunk groups
	TimeToFirst        Summary // seconds from run start to the first emitted token

	// Fault-tolerance counters per run (serving layer, PR 6).
	RunTimeouts  Summary // runs the watchdog declared failed
	Recoveries   Summary // sessions recovered by evict + prefix-recompute
	Reconnects   Summary // transport links re-established
	BreakerTrips Summary // repeated-failure breaker trips

	// Overload-control counters per run (serving layer, PR 10).
	Sheds          Summary // queued requests shed on unmeetable TTFT deadlines
	Overloads      Summary // submissions rejected at admission
	DeadlineHits   Summary // deadline-carrying requests that met every deadline
	DeadlineMisses Summary // deadline-carrying requests that missed one
}

// Collector accumulates repetition results for one condition.
type Collector struct {
	speed, ttft, itl, acc, mem, cancelled []float64
	specDrops, preempts, readmits         []float64
	batchedRuns, meanBatch, rowCancels    []float64
	prefillBatched, timeToFirst           []float64
	runTimeouts, recoveries               []float64
	reconnects, breakerTrips              []float64
	sheds, overloads, dlHits, dlMisses    []float64
}

// Add records one generation's stats and per-node memory bytes.
func (c *Collector) Add(s engine.Stats, perNodeMem []int64) {
	c.speed = append(c.speed, s.Speed())
	c.ttft = append(c.ttft, s.TTFT().Seconds())
	c.itl = append(c.itl, s.ITL().Seconds())
	c.acc = append(c.acc, s.AcceptanceRate())
	c.cancelled = append(c.cancelled, float64(s.RunsCancelled))
	c.specDrops = append(c.specDrops, float64(s.SpecDrops))
	c.preempts = append(c.preempts, float64(s.Preemptions))
	c.readmits = append(c.readmits, float64(s.Readmissions))
	c.batchedRuns = append(c.batchedRuns, float64(s.BatchedRuns))
	c.meanBatch = append(c.meanBatch, s.MeanBatch())
	c.rowCancels = append(c.rowCancels, float64(s.RowCancels))
	c.prefillBatched = append(c.prefillBatched, float64(s.PrefillBatchedRuns))
	c.timeToFirst = append(c.timeToFirst, s.TimeToFirst().Seconds())
	c.runTimeouts = append(c.runTimeouts, float64(s.RunTimeouts))
	c.recoveries = append(c.recoveries, float64(s.Recoveries))
	c.reconnects = append(c.reconnects, float64(s.Reconnects))
	c.breakerTrips = append(c.breakerTrips, float64(s.BreakerTrips))
	c.sheds = append(c.sheds, float64(s.Sheds))
	c.overloads = append(c.overloads, float64(s.Overloads))
	c.dlHits = append(c.dlHits, float64(s.DeadlineHits))
	c.dlMisses = append(c.dlMisses, float64(s.DeadlineMisses))
	if len(perNodeMem) > 0 {
		var sum float64
		for _, m := range perNodeMem {
			sum += float64(m)
		}
		c.mem = append(c.mem, sum/float64(len(perNodeMem))/float64(1<<30))
	}
}

// N reports the number of repetitions recorded.
func (c *Collector) N() int { return len(c.speed) }

// Agg summarises the collected repetitions.
func (c *Collector) Agg() Agg {
	return Agg{
		Speed:        Summarize(c.speed),
		TTFT:         Summarize(c.ttft),
		ITL:          Summarize(c.itl),
		Acceptance:   Summarize(c.acc),
		PerNodeGiB:   Summarize(c.mem),
		Cancelled:    Summarize(c.cancelled),
		SpecDrops:    Summarize(c.specDrops),
		Preemptions:  Summarize(c.preempts),
		Readmissions: Summarize(c.readmits),
		BatchedRuns:  Summarize(c.batchedRuns),
		MeanBatch:    Summarize(c.meanBatch),
		RowCancels:   Summarize(c.rowCancels),

		PrefillBatchedRuns: Summarize(c.prefillBatched),
		TimeToFirst:        Summarize(c.timeToFirst),

		RunTimeouts:  Summarize(c.runTimeouts),
		Recoveries:   Summarize(c.recoveries),
		Reconnects:   Summarize(c.reconnects),
		BreakerTrips: Summarize(c.breakerTrips),

		Sheds:          Summarize(c.sheds),
		Overloads:      Summarize(c.overloads),
		DeadlineHits:   Summarize(c.dlHits),
		DeadlineMisses: Summarize(c.dlMisses),
	}
}

// DeadlineHitRate reports the fraction of deadline-carrying served
// requests that met every configured deadline (0 when none carried
// deadlines) — the numerator of goodput.
func (a Agg) DeadlineHitRate() float64 {
	h, m := a.DeadlineHits.Mean, a.DeadlineMisses.Mean
	if h+m <= 0 {
		return 0
	}
	return h / (h + m)
}

// FaultEvents reports the mean number of fault-tolerance events (run
// timeouts plus session recoveries plus link reconnections) per run.
func (a Agg) FaultEvents() float64 {
	return a.RunTimeouts.Mean + a.Recoveries.Mean + a.Reconnects.Mean
}

// PressureEvents reports the mean number of memory-pressure events
// (speculative drops plus preemptions) per run — an unbounded count, not
// a rate.
func (a Agg) PressureEvents() float64 {
	return a.SpecDrops.Mean + a.Preemptions.Mean
}

// SpeedPerGiB is Fig 7a's memory-efficiency metric: generation speed
// divided by mean per-node resident memory.
func (a Agg) SpeedPerGiB() float64 {
	if a.PerNodeGiB.Mean <= 0 {
		return 0
	}
	return a.Speed.Mean / a.PerNodeGiB.Mean
}

// CostEMA is an online, exponentially forgotten least-squares fit of the
// pipeline's per-run service time T(n) ≈ Overhead + PerRow·n, where n is
// the run's token-row count. The serving scheduler feeds it one
// observation per consumed result while the pipeline is busy (so the gap
// between consecutive results approximates one run's service time) and
// the adaptive batch-width controller reads the fitted overhead-to-row
// cost ratio: a large ratio means per-run overhead dominates and wide
// batches pay, a small one means rows dominate and width buys little.
// All state is five scalars, so Observe is allocation-free and O(1).
type CostEMA struct {
	// Decay is the per-observation forgetting factor in (0, 1); 0 picks
	// DefaultCostDecay. Smaller values track regime changes faster.
	Decay float64

	s1, sn, snn, st, snt float64
	n                    int
}

// DefaultCostDecay keeps roughly the last ~50 runs' weight in the fit.
const DefaultCostDecay = 0.98

// Observe folds one (rows, serviceTime) sample into the fit.
func (e *CostEMA) Observe(rows int, d time.Duration) {
	if rows <= 0 || d <= 0 {
		return
	}
	lambda := e.Decay
	if lambda <= 0 || lambda >= 1 {
		lambda = DefaultCostDecay
	}
	x, t := float64(rows), d.Seconds()
	e.s1 = lambda*e.s1 + 1
	e.sn = lambda*e.sn + x
	e.snn = lambda*e.snn + x*x
	e.st = lambda*e.st + t
	e.snt = lambda*e.snt + x*t
	e.n++
}

// Samples reports how many observations have been folded in.
func (e *CostEMA) Samples() int { return e.n }

// fit solves the 2x2 normal equations; ok is false until the samples
// show enough row-count variation to separate overhead from row cost.
func (e *CostEMA) fit() (a, b float64, ok bool) {
	det := e.s1*e.snn - e.sn*e.sn
	if e.n < 4 || det < 1e-12 {
		return 0, 0, false
	}
	a = (e.snn*e.st - e.sn*e.snt) / det
	b = (e.s1*e.snt - e.sn*e.st) / det
	return a, b, true
}

// Overhead returns the fitted fixed per-run cost in seconds (0 until the
// fit is determined).
func (e *CostEMA) Overhead() float64 {
	a, _, ok := e.fit()
	if !ok || a < 0 {
		return 0
	}
	return a
}

// PerRow returns the fitted marginal per-row cost in seconds (0 until
// the fit is determined).
func (e *CostEMA) PerRow() float64 {
	_, b, ok := e.fit()
	if !ok || b < 0 {
		return 0
	}
	return b
}

// Ratio returns Overhead/PerRow — how many rows of compute one run's
// fixed overhead is worth — or 0 while the fit is undetermined. The
// adaptive width controller widens batches in proportion to it.
func (e *CostEMA) Ratio() float64 {
	a, b, ok := e.fit()
	if !ok || a <= 0 || b <= 1e-12 {
		return 0
	}
	return a / b
}

// DurationSummary renders a seconds summary as a duration string.
func DurationSummary(s Summary) string {
	return fmt.Sprintf("%v ± %v",
		time.Duration(s.Mean*float64(time.Second)).Round(time.Millisecond),
		time.Duration(s.Std*float64(time.Second)).Round(time.Millisecond))
}
