// Package metrics aggregates the paper's evaluation measurements across
// repetitions (§V-A runs every experiment 10 times and averages).
package metrics

import (
	"fmt"
	"math"
	"time"

	"github.com/pipeinfer/pipeinfer/internal/engine"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes summary statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String renders "mean ± std".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.Std)
}

// Agg aggregates one experimental condition over repetitions.
type Agg struct {
	Speed      Summary // tokens/second
	TTFT       Summary // seconds
	ITL        Summary // seconds
	Acceptance Summary // fraction
	PerNodeGiB Summary // mean resident GiB per node
	Cancelled  Summary // cancelled runs per generation

	// Memory-pressure protocol counters per run (serving layer, PR 3).
	SpecDrops    Summary // speculative footprints dropped
	Preemptions  Summary // sessions parked (namespace evicted)
	Readmissions Summary // parked sessions readmitted (prefix recompute)

	// Cross-session batching counters per run (serving layer, PR 4).
	BatchedRuns Summary // multi-session pipeline runs launched
	MeanBatch   Summary // realised mean sessions per batched run
	RowCancels  Summary // per-session rows masked out of in-flight batches
}

// Collector accumulates repetition results for one condition.
type Collector struct {
	speed, ttft, itl, acc, mem, cancelled []float64
	specDrops, preempts, readmits         []float64
	batchedRuns, meanBatch, rowCancels    []float64
}

// Add records one generation's stats and per-node memory bytes.
func (c *Collector) Add(s engine.Stats, perNodeMem []int64) {
	c.speed = append(c.speed, s.Speed())
	c.ttft = append(c.ttft, s.TTFT().Seconds())
	c.itl = append(c.itl, s.ITL().Seconds())
	c.acc = append(c.acc, s.AcceptanceRate())
	c.cancelled = append(c.cancelled, float64(s.RunsCancelled))
	c.specDrops = append(c.specDrops, float64(s.SpecDrops))
	c.preempts = append(c.preempts, float64(s.Preemptions))
	c.readmits = append(c.readmits, float64(s.Readmissions))
	c.batchedRuns = append(c.batchedRuns, float64(s.BatchedRuns))
	c.meanBatch = append(c.meanBatch, s.MeanBatch())
	c.rowCancels = append(c.rowCancels, float64(s.RowCancels))
	if len(perNodeMem) > 0 {
		var sum float64
		for _, m := range perNodeMem {
			sum += float64(m)
		}
		c.mem = append(c.mem, sum/float64(len(perNodeMem))/float64(1<<30))
	}
}

// N reports the number of repetitions recorded.
func (c *Collector) N() int { return len(c.speed) }

// Agg summarises the collected repetitions.
func (c *Collector) Agg() Agg {
	return Agg{
		Speed:        Summarize(c.speed),
		TTFT:         Summarize(c.ttft),
		ITL:          Summarize(c.itl),
		Acceptance:   Summarize(c.acc),
		PerNodeGiB:   Summarize(c.mem),
		Cancelled:    Summarize(c.cancelled),
		SpecDrops:    Summarize(c.specDrops),
		Preemptions:  Summarize(c.preempts),
		Readmissions: Summarize(c.readmits),
		BatchedRuns:  Summarize(c.batchedRuns),
		MeanBatch:    Summarize(c.meanBatch),
		RowCancels:   Summarize(c.rowCancels),
	}
}

// PressureEvents reports the mean number of memory-pressure events
// (speculative drops plus preemptions) per run — an unbounded count, not
// a rate.
func (a Agg) PressureEvents() float64 {
	return a.SpecDrops.Mean + a.Preemptions.Mean
}

// SpeedPerGiB is Fig 7a's memory-efficiency metric: generation speed
// divided by mean per-node resident memory.
func (a Agg) SpeedPerGiB() float64 {
	if a.PerNodeGiB.Mean <= 0 {
		return 0
	}
	return a.Speed.Mean / a.PerNodeGiB.Mean
}

// DurationSummary renders a seconds summary as a duration string.
func DurationSummary(s Summary) string {
	return fmt.Sprintf("%v ± %v",
		time.Duration(s.Mean*float64(time.Second)).Round(time.Millisecond),
		time.Duration(s.Std*float64(time.Second)).Round(time.Millisecond))
}
