package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/pipeinfer/pipeinfer/internal/engine"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary wrong: %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, want)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary")
	}
	if s := Summarize([]float64{7}); s.Std != 0 || s.Mean != 7 {
		t.Fatal("singleton summary")
	}
}

func TestSummaryString(t *testing.T) {
	if got := Summarize([]float64{2, 2}).String(); !strings.Contains(got, "2.000") {
		t.Fatalf("summary string %q", got)
	}
}

func mkStats(speedTok int, genTime time.Duration) engine.Stats {
	s := engine.Stats{
		Generated:   speedTok,
		PrefillDone: time.Second,
		FirstToken:  time.Second + 100*time.Millisecond,
		Done:        time.Second + genTime,
		Proposed:    10,
		Accepted:    8,
	}
	s.AcceptTimes = []time.Duration{s.FirstToken, s.Done}
	return s
}

func TestCollector(t *testing.T) {
	var c Collector
	c.Add(mkStats(10, time.Second), []int64{1 << 30, 3 << 30})
	c.Add(mkStats(20, time.Second), []int64{1 << 30, 3 << 30})
	if c.N() != 2 {
		t.Fatalf("N = %d", c.N())
	}
	agg := c.Agg()
	if agg.Speed.Mean != 15 {
		t.Fatalf("speed mean %v", agg.Speed.Mean)
	}
	if agg.PerNodeGiB.Mean != 2 {
		t.Fatalf("per-node GiB %v", agg.PerNodeGiB.Mean)
	}
	if agg.Acceptance.Mean != 0.8 {
		t.Fatalf("acceptance %v", agg.Acceptance.Mean)
	}
	if got := agg.SpeedPerGiB(); math.Abs(got-7.5) > 1e-9 {
		t.Fatalf("speed per GiB %v", got)
	}
}

func TestSpeedPerGiBZeroMemory(t *testing.T) {
	var a Agg
	if a.SpeedPerGiB() != 0 {
		t.Fatal("zero memory should give zero efficiency")
	}
}

func TestDurationSummary(t *testing.T) {
	s := Summarize([]float64{0.5, 1.5})
	got := DurationSummary(s)
	if !strings.Contains(got, "1s") {
		t.Fatalf("duration summary %q", got)
	}
}

// TestBatchingCounters checks the PR-4 batching counters flow through
// aggregation: batched runs, realised mean batch width and row cancels.
func TestBatchingCounters(t *testing.T) {
	var c Collector
	c.Add(engine.Stats{BatchedRuns: 4, BatchedRows: 12, RowCancels: 2}, nil)
	c.Add(engine.Stats{BatchedRuns: 2, BatchedRows: 8, RowCancels: 0}, nil)
	a := c.Agg()
	if a.BatchedRuns.Mean != 3 {
		t.Fatalf("BatchedRuns mean %v", a.BatchedRuns.Mean)
	}
	if a.MeanBatch.Mean != 3.5 { // (12/4 + 8/2) / 2
		t.Fatalf("MeanBatch mean %v", a.MeanBatch.Mean)
	}
	if a.RowCancels.Mean != 1 {
		t.Fatalf("RowCancels mean %v", a.RowCancels.Mean)
	}
}

// TestPrefillCounters checks the PR-5 chunked-prefill counters flow
// through aggregation: prefill-chunk runs and time-to-first-token.
func TestPrefillCounters(t *testing.T) {
	var c Collector
	c.Add(engine.Stats{PrefillBatchedRuns: 6, PrefillDone: 2 * time.Second}, nil)
	c.Add(engine.Stats{PrefillBatchedRuns: 2, PrefillDone: 1 * time.Second}, nil)
	a := c.Agg()
	if a.PrefillBatchedRuns.Mean != 4 {
		t.Fatalf("PrefillBatchedRuns mean %v", a.PrefillBatchedRuns.Mean)
	}
	if a.TimeToFirst.Mean != 1.5 {
		t.Fatalf("TimeToFirst mean %v", a.TimeToFirst.Mean)
	}
}

// TestCostEMA checks the adaptive width controller's cost model: fed
// exact T = a + b·n samples at varying row counts, the exponentially
// forgotten least-squares fit must recover the overhead, the per-row
// cost and their ratio; fed constant-width samples it must stay
// undetermined (no row-count variation separates a from b).
func TestCostEMA(t *testing.T) {
	var e CostEMA
	const (
		overhead = 5 * time.Millisecond
		perRow   = time.Millisecond
	)
	for i := 0; i < 60; i++ {
		n := 1 + i%8
		e.Observe(n, overhead+time.Duration(n)*perRow)
	}
	if e.Samples() != 60 {
		t.Fatalf("samples %d", e.Samples())
	}
	if got := e.Overhead(); got < 0.0045 || got > 0.0055 {
		t.Fatalf("overhead %v, want ~0.005", got)
	}
	if got := e.PerRow(); got < 0.0009 || got > 0.0011 {
		t.Fatalf("per-row %v, want ~0.001", got)
	}
	if got := e.Ratio(); got < 4.5 || got > 5.5 {
		t.Fatalf("ratio %v, want ~5", got)
	}
	// A shifted regime is tracked: after many cheaper samples the fit
	// forgets the old overhead.
	for i := 0; i < 400; i++ {
		n := 1 + i%8
		e.Observe(n, time.Millisecond+time.Duration(n)*perRow)
	}
	if got := e.Overhead(); got > 0.002 {
		t.Fatalf("overhead %v after regime change, want ~0.001", got)
	}
	// Constant width: undetermined, reported as zeros.
	var flat CostEMA
	for i := 0; i < 50; i++ {
		flat.Observe(4, 9*time.Millisecond)
	}
	if flat.Ratio() != 0 || flat.Overhead() != 0 || flat.PerRow() != 0 {
		t.Fatal("constant-width samples produced a determined fit")
	}
	// Garbage observations are ignored.
	flat.Observe(0, time.Second)
	flat.Observe(3, -time.Second)
	if flat.Samples() != 50 {
		t.Fatal("degenerate observations were counted")
	}
}
