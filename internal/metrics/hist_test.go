package metrics

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHistBucketsContinuous asserts the bucket index function is
// monotone and gap-free over value boundaries, and that every bucket's
// bounds round-trip through the index.
func TestHistBucketsContinuous(t *testing.T) {
	prev := -1
	for _, u := range []uint64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 63, 64, 1 << 20, 1<<62 - 1, 1 << 62, 1<<63 - 1} {
		idx := histIdx(u)
		if idx < prev {
			t.Fatalf("histIdx(%d) = %d < previous %d: not monotone", u, idx, prev)
		}
		if idx >= histCells {
			t.Fatalf("histIdx(%d) = %d out of range %d", u, idx, histCells)
		}
		lo, hi := histBounds(idx)
		if int64(u) < lo || int64(u) > hi {
			t.Fatalf("value %d outside its bucket %d bounds [%d,%d]", u, idx, lo, hi)
		}
		prev = idx
	}
	// Adjacent buckets must tile the value line with no gaps or overlap.
	for i := 0; i < histCells-1; i++ {
		_, hi := histBounds(i)
		lo, _ := histBounds(i + 1)
		if lo != hi+1 {
			t.Fatalf("bucket %d ends at %d but bucket %d starts at %d", i, hi, i+1, lo)
		}
	}
}

// TestHistQuantileDifferential checks Quantile against a brute-force
// sorted reference across random workloads. The log-bucketed estimate
// must land within the reference's bucket resolution: bucket width is
// at most 1/4 of its lower bound, so the midpoint is within 12.5%
// relative error (plus 1 for integer rounding at small values).
func TestHistQuantileDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	workloads := []struct {
		name string
		gen  func() int64
		n    int
	}{
		{"uniform-small", func() int64 { return rng.Int63n(100) }, 5000},
		{"uniform-wide", func() int64 { return rng.Int63n(1 << 40) }, 5000},
		{"exponential", func() int64 { return int64(rng.ExpFloat64() * 1e6) }, 5000},
		{"constant", func() int64 { return 12345 }, 1000},
		{"bimodal", func() int64 {
			if rng.Intn(2) == 0 {
				return rng.Int63n(10)
			}
			return 1e9 + rng.Int63n(1e9)
		}, 5000},
		{"single", func() int64 { return 7 }, 1},
		{"negative-clamped", func() int64 { return rng.Int63n(20) - 10 }, 2000},
	}
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for _, wl := range workloads {
		var h Hist
		ref := make([]int64, 0, wl.n)
		for i := 0; i < wl.n; i++ {
			v := wl.gen()
			h.Observe(v)
			if v < 0 {
				v = 0 // Observe clamps; the reference must agree
			}
			ref = append(ref, v)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		if got, want := h.Count(), uint64(wl.n); got != want {
			t.Fatalf("%s: Count() = %d, want %d", wl.name, got, want)
		}
		for _, p := range quantiles {
			rank := int(float64(wl.n) * p)
			if rank < 1 {
				rank = 1
			}
			if rank > wl.n {
				rank = wl.n
			}
			want := ref[rank-1]
			got := h.Quantile(p)
			tol := want/8 + 1
			if got < want-tol || got > want+tol {
				t.Errorf("%s: Quantile(%g) = %d, reference %d (tolerance %d)",
					wl.name, p, got, want, tol)
			}
		}
	}
}

// TestHistNilAndEmpty locks in the nil-receiver and zero-sample
// behaviour the telemetry hot path relies on.
func TestHistNilAndEmpty(t *testing.T) {
	var nilH *Hist
	nilH.Observe(5) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil Hist must report zeros")
	}
	var h Hist
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty Hist must report zero quantiles")
	}
	h.Observe(-100)
	if h.Quantile(1) != 0 || h.Sum() != 0 {
		t.Fatal("negative samples must clamp to zero")
	}
}
