package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is an allocation-free streaming histogram over non-negative
// int64 samples (durations are observed in nanoseconds). Buckets are
// log-spaced with histSub sub-buckets per power of two, so any bucket's
// width is at most 1/histSub of its lower bound and a quantile estimate
// is within ~12.5% relative error of the true order statistic. All
// state is a fixed array of atomic counters: Observe is lock-free,
// O(1) and heap-allocation-free, safe for concurrent writers, and
// Quantile may run concurrently with writers (it sees a slightly
// smeared but monotone view — fine for monitoring).
//
// The zero value is ready to use. A nil *Hist ignores observations and
// reports zeros, so telemetry-off paths need no branching.
type Hist struct {
	count atomic.Uint64
	sum   atomic.Int64
	cells [histCells]atomic.Uint64
}

const (
	// histSubBits sets the resolution: 1<<histSubBits sub-buckets per
	// power of two. 2 bits keeps the whole histogram in 248 buckets
	// while bounding relative quantile error at 1/8.
	histSubBits = 2
	histSub     = 1 << histSubBits

	// Values 0..histSub-1 get exact singleton buckets; above that,
	// exponents 2..62 (the int64 range) each contribute histSub cells.
	histCells = histSub + (63-histSubBits)*histSub
)

// histIdx maps a non-negative value to its bucket index.
func histIdx(u uint64) int {
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	return (exp-histSubBits)<<histSubBits + int((u>>(exp-histSubBits))&(histSub-1)) + histSub
}

// histBounds returns the inclusive [lo, hi] value range of bucket idx.
func histBounds(idx int) (lo, hi int64) {
	if idx < histSub {
		return int64(idx), int64(idx)
	}
	g := (idx - histSub) >> histSubBits
	sub := (idx - histSub) & (histSub - 1)
	shift := uint(g) // == exp - histSubBits
	lo = int64(histSub+sub) << shift
	return lo, lo + int64(1)<<shift - 1
}

// Observe folds one sample in. Negative samples clamp to zero.
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.cells[histIdx(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records d in nanoseconds.
func (h *Hist) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count reports the number of samples observed.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running sum of all samples.
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the p-quantile (p in [0,1]) as the midpoint of the
// bucket holding the rank-⌈p·n⌉ sample. Returns 0 with no samples.
func (h *Hist) Quantile(p float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i := range h.cells {
		cum += h.cells[i].Load()
		if cum >= rank {
			lo, hi := histBounds(i)
			return lo + (hi-lo)/2
		}
	}
	// Writers raced count ahead of cells; fall back to the top bucket seen.
	for i := histCells - 1; i >= 0; i-- {
		if h.cells[i].Load() > 0 {
			lo, hi := histBounds(i)
			return lo + (hi-lo)/2
		}
	}
	return 0
}

// QuantileDuration is Quantile for nanosecond-observed durations.
func (h *Hist) QuantileDuration(p float64) time.Duration {
	return time.Duration(h.Quantile(p))
}
