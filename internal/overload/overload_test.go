package overload

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refKey recomputes the ordering key independently of Queue.keyOf so
// the property and fuzz tests are a genuine cross-check of the heap
// implementation, not a tautology.
func refKey(cfg Config, it Item) float64 {
	eff := it.TTFTDeadline
	if eff == 0 {
		eff = it.Deadline
	}
	if eff == 0 {
		eff = it.Arrived + cfg.Horizon
	}
	return float64(eff) - float64(cfg.PriorityBias)*float64(it.Priority) +
		cfg.AgingRate*float64(it.Arrived)
}

func refLess(cfg Config, a, b Item) bool {
	ka, kb := refKey(cfg, a), refKey(cfg, b)
	if ka != kb {
		return ka < kb
	}
	return a.ID < b.ID
}

func randItem(r *rand.Rand, id int) Item {
	it := Item{
		ID:       id,
		Priority: r.Intn(5) - 2,
		Arrived:  time.Duration(r.Intn(1000)) * time.Millisecond,
		Cost:     r.Intn(256),
	}
	if r.Intn(2) == 0 {
		it.TTFTDeadline = it.Arrived + time.Duration(1+r.Intn(2000))*time.Millisecond
	}
	if r.Intn(2) == 0 {
		it.Deadline = it.Arrived + time.Duration(1+r.Intn(8000))*time.Millisecond
	}
	return it
}

// TestKeyTotalOrder: the comparator is a strict total order — exactly
// one of less(a,b) / less(b,a) holds for distinct items (IDs are
// unique), never both, and the relation is transitive.
func TestKeyTotalOrder(t *testing.T) {
	cfg := Config{}.normalize()
	r := rand.New(rand.NewSource(1))
	items := make([]Item, 64)
	for i := range items {
		items[i] = randItem(r, i)
	}
	for _, a := range items {
		if refLess(cfg, a, a) {
			t.Fatalf("less(a,a) for %+v", a)
		}
		for _, b := range items {
			if a.ID == b.ID {
				continue
			}
			ab, ba := refLess(cfg, a, b), refLess(cfg, b, a)
			if ab == ba {
				t.Fatalf("not a strict total order: less(a,b)=%v less(b,a)=%v for %+v %+v", ab, ba, a, b)
			}
		}
	}
	for trial := 0; trial < 1000; trial++ {
		a, b, c := items[r.Intn(64)], items[r.Intn(64)], items[r.Intn(64)]
		if refLess(cfg, a, b) && refLess(cfg, b, c) && !refLess(cfg, a, c) {
			t.Fatalf("transitivity broken for %+v %+v %+v", a, b, c)
		}
	}
}

// TestAgingMonotone: with all else equal, the earlier arrival pops
// first, and waiting never hurts — an item's rank relative to a fixed
// newcomer only improves as the gap between their arrivals grows.
func TestAgingMonotone(t *testing.T) {
	q := New(Config{})
	old := Item{ID: 1, Arrived: 0}
	young := Item{ID: 0, Arrived: 500 * time.Millisecond}
	q.Push(young)
	q.Push(old)
	if it, _ := q.Pop(); it.ID != old.ID {
		t.Fatalf("earlier arrival should pop first, got ID %d", it.ID)
	}
	// Monotone in age: keys strictly increase with Arrived.
	cfg := Config{}.normalize()
	prev := refKey(cfg, Item{ID: 2, Arrived: 0})
	for ms := 1; ms <= 1000; ms *= 2 {
		k := refKey(cfg, Item{ID: 2, Arrived: time.Duration(ms) * time.Millisecond})
		if k <= prev {
			t.Fatalf("aging not monotone at %dms: key %v <= %v", ms, k, prev)
		}
		prev = k
	}
}

// TestNoStarvation: a low-priority, deadline-less item survives an
// adversarial stream of high-priority tight-deadline arrivals. One item
// is popped per tick while the adversary pushes one per tick; the
// resident item must pop within the bound implied by the aging rate:
// once (1+aging)·T − bias·maxPrio exceeds Horizon, no newcomer can
// outrank it.
func TestNoStarvation(t *testing.T) {
	cfg := Config{Horizon: 10 * time.Second, PriorityBias: time.Second, AgingRate: 0.5}
	q := New(cfg)
	const victim = 0
	q.Push(Item{ID: victim, Priority: -2, Arrived: 0})
	tick := 10 * time.Millisecond
	// Bound: newcomer key exceeds the victim's (Horizon + bias·(prio
	// gap)) once (1+aging)·T > Horizon + bias·(maxPrio − victimPrio).
	limit := int(float64(cfg.Horizon+6*cfg.PriorityBias)/(1.5*float64(tick))) + 2
	for i := 1; ; i++ {
		if i > 10*limit {
			t.Fatalf("victim not popped after %d ticks (limit %d)", i, 10*limit)
		}
		now := time.Duration(i) * tick
		q.Push(Item{ID: i, Priority: 4, Arrived: now, TTFTDeadline: now + tick})
		it, ok := q.Pop()
		if !ok {
			t.Fatal("queue unexpectedly empty")
		}
		if it.ID == victim {
			if i > limit {
				t.Fatalf("victim popped at tick %d, beyond the aging bound %d", i, limit)
			}
			return
		}
	}
}

// TestShedProvablyUnmeetable: with no cost model at all, only items
// whose TTFT deadline has already passed are shed; with an optimistic
// wait estimate, items whose deadline is inside that wait go too.
// Deadline-less items are never shed.
func TestShedProvablyUnmeetable(t *testing.T) {
	q := New(Config{})
	q.Push(Item{ID: 0})                                                  // no deadline: never shed
	q.Push(Item{ID: 1, TTFTDeadline: 100 * time.Millisecond})            // expired at now=200ms
	q.Push(Item{ID: 2, TTFTDeadline: 300 * time.Millisecond, Cost: 100}) // alive without estimate
	shed := q.Shed(200*time.Millisecond, nil)
	if len(shed) != 1 || shed[0].ID != 1 {
		t.Fatalf("fallback shed = %v, want just ID 1", shed)
	}
	// Optimistic wait of 2ms/cost-row: item 2 needs 200ms, deadline in
	// 100ms — provably unmeetable now.
	shed = q.Shed(200*time.Millisecond, func(it Item) time.Duration {
		return time.Duration(it.Cost) * 2 * time.Millisecond
	})
	if len(shed) != 1 || shed[0].ID != 2 {
		t.Fatalf("estimated shed = %v, want just ID 2", shed)
	}
	if q.Len() != 1 {
		t.Fatalf("queue len = %d, want 1 survivor", q.Len())
	}
	if it, _ := q.Pop(); it.ID != 0 {
		t.Fatalf("survivor = %d, want the deadline-less item", it.ID)
	}
}

// TestBoundAndCost: Push respects the bound and CostSum tracks queued
// demand through push/pop/shed.
func TestBoundAndCost(t *testing.T) {
	q := New(Config{Bound: 2})
	if !q.Push(Item{ID: 0, Cost: 10}) || !q.Push(Item{ID: 1, Cost: 20}) {
		t.Fatal("pushes under bound must succeed")
	}
	if q.Push(Item{ID: 2, Cost: 30}) {
		t.Fatal("push at bound must fail")
	}
	if !q.Full() || q.CostSum() != 30 {
		t.Fatalf("Full=%v CostSum=%d, want true/30", q.Full(), q.CostSum())
	}
	q.Pop()
	if q.Full() || q.CostSum() == 30 {
		t.Fatalf("pop must free a slot and drop cost, got Full=%v CostSum=%d", q.Full(), q.CostSum())
	}
}

// FuzzQueueOrder: random push/pop/shed interleavings through the heap
// must match a brute-force reference (linear min-scan over the same
// independently computed key).
func FuzzQueueOrder(f *testing.F) {
	f.Add([]byte{0, 10, 1, 2, 3, 1, 0, 20, 0, 0, 0, 2, 50, 1, 1})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 0, 5, 4, 3, 2, 1, 1, 1, 1, 1})
	f.Add([]byte{2, 255, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{Bound: 8, Horizon: time.Second, PriorityBias: 100 * time.Millisecond, AgingRate: 0.5}
		q := New(cfg)
		var ref []Item
		minWait := func(it Item) time.Duration {
			return time.Duration(it.Cost) * time.Millisecond
		}
		nextID := 0
		for i := 0; i+1 <= len(data); {
			op := data[i] % 3
			i++
			switch op {
			case 0: // push
				if i+5 > len(data) {
					return
				}
				it := Item{
					ID:       nextID,
					Priority: int(data[i]%5) - 2,
					Arrived:  time.Duration(data[i+1]) * 10 * time.Millisecond,
					Cost:     int(data[i+4]),
				}
				if data[i+2]%2 == 0 {
					it.TTFTDeadline = it.Arrived + time.Duration(1+int(data[i+2]))*10*time.Millisecond
				}
				if data[i+3]%2 == 0 {
					it.Deadline = it.Arrived + time.Duration(1+int(data[i+3]))*20*time.Millisecond
				}
				i += 5
				nextID++
				got := q.Push(it)
				want := len(ref) < cfg.Bound
				if got != want {
					t.Fatalf("Push accept=%v, reference=%v at %d items", got, want, len(ref))
				}
				if want {
					ref = append(ref, it)
				}
			case 1: // pop
				it, ok := q.Pop()
				if ok != (len(ref) > 0) {
					t.Fatalf("Pop ok=%v with reference len %d", ok, len(ref))
				}
				if !ok {
					continue
				}
				best := 0
				for j := 1; j < len(ref); j++ {
					if refLess(cfg, ref[j], ref[best]) {
						best = j
					}
				}
				if it.ID != ref[best].ID {
					t.Fatalf("Pop = ID %d, reference min = ID %d", it.ID, ref[best].ID)
				}
				ref = append(ref[:best], ref[best+1:]...)
			case 2: // shed
				if i >= len(data) {
					return
				}
				now := time.Duration(data[i]) * 10 * time.Millisecond
				i++
				shed := q.Shed(now, minWait)
				var want []Item
				keep := ref[:0]
				for _, it := range ref {
					if it.TTFTDeadline > 0 && now+minWait(it) > it.TTFTDeadline {
						want = append(want, it)
					} else {
						keep = append(keep, it)
					}
				}
				ref = keep
				gotIDs := make([]int, len(shed))
				for j, it := range shed {
					gotIDs[j] = it.ID
				}
				wantIDs := make([]int, len(want))
				for j, it := range want {
					wantIDs[j] = it.ID
				}
				sort.Ints(gotIDs)
				sort.Ints(wantIDs)
				if len(gotIDs) != len(wantIDs) {
					t.Fatalf("Shed %v, reference %v", gotIDs, wantIDs)
				}
				for j := range gotIDs {
					if gotIDs[j] != wantIDs[j] {
						t.Fatalf("Shed %v, reference %v", gotIDs, wantIDs)
					}
				}
			}
			if q.Len() != len(ref) {
				t.Fatalf("Len = %d, reference %d", q.Len(), len(ref))
			}
			wantCost := 0
			for _, it := range ref {
				wantCost += it.Cost
			}
			if q.CostSum() != wantCost {
				t.Fatalf("CostSum = %d, reference %d", q.CostSum(), wantCost)
			}
		}
		// Drain: the full pop order must match repeated reference min-scans.
		for len(ref) > 0 {
			it, ok := q.Pop()
			if !ok {
				t.Fatalf("queue empty with %d reference items left", len(ref))
			}
			best := 0
			for j := 1; j < len(ref); j++ {
				if refLess(cfg, ref[j], ref[best]) {
					best = j
				}
			}
			if it.ID != ref[best].ID {
				t.Fatalf("drain Pop = ID %d, reference min = ID %d", it.ID, ref[best].ID)
			}
			ref = append(ref[:best], ref[best+1:]...)
		}
	})
}
