// Package overload implements the serving layer's admission-control
// queue (PR 10): a bounded, deadline-aware priority queue that orders
// waiting requests by earliest feasible deadline with priority aging,
// and sheds a queued request the moment its TTFT deadline is provably
// unmeetable — before any prefill compute has been spent on it.
//
// # Ordering
//
// Each item is ranked by a scalar key derived from three signals:
//
//	key(it) = eff(it) − PriorityBias·Priority + AgingRate·Arrived
//
// where eff(it) is the item's effective deadline — its TTFT deadline
// when set, else its completion deadline, else Arrived+Horizon (so
// deadline-less items order FIFO among themselves at a fixed virtual
// urgency). Smaller keys pop first; ties break on the item ID, which
// makes the order total.
//
// The aging term is what prevents starvation: it is the static form of
// the usual "urgency grows while waiting" rule. Comparing two items at
// any instant t, the dynamic key eff − PriorityBias·Priority −
// AgingRate·(t − Arrived) differs from the static key only by the
// common offset AgingRate·t, so the ordering is time-invariant and can
// be computed once at push. Because a newcomer arriving at time T has
// eff ≥ T (an already-expired deadline is shed, not queued), its key
// grows without bound as (1+AgingRate)·T while any resident item's key
// is fixed — only finitely many later arrivals can overtake a waiting
// item, no matter their priority.
//
// # Shedding
//
// Shed removes every queued item whose TTFT deadline cannot be met even
// under an optimistic lower bound on its waiting time: the caller
// supplies minWait (typically the cost model's marginal prefill cost
// for the item; zero until the fit converges), and an item is shed when
// now + minWait(item) exceeds its TTFT deadline. With no cost estimate
// at all the predicate degenerates to "deadline already passed", which
// is still provably unmeetable — shedding never guesses.
//
// The queue is single-threaded by design: it lives inside the serving
// scheduler, which is strictly head-side and single-threaded.
package overload

import "time"

// Item is one queued request's scheduling descriptor. All times are
// absolute readings of the caller's clock (wall or virtual).
type Item struct {
	// ID identifies the request (the serving layer's request index) and
	// breaks ordering ties, making the queue order total.
	ID int
	// Priority biases ordering: higher-priority items rank as if their
	// deadline were PriorityBias earlier per priority unit.
	Priority int
	// Arrived is when the request was submitted.
	Arrived time.Duration
	// TTFTDeadline is the absolute latest time the request's first token
	// may appear (0 = none). It drives both ordering and shedding.
	TTFTDeadline time.Duration
	// Deadline is the absolute completion deadline (0 = none); used for
	// ordering when no TTFT deadline is set.
	Deadline time.Duration
	// Cost is the request's predicted service demand in token rows
	// (its prompt length): the shed predicate's optimistic wait and the
	// admission layer's sustainable-rate estimate both scale with it.
	Cost int
}

// Config tunes the queue's ordering and bound.
type Config struct {
	// Bound caps the number of queued items; Push fails beyond it.
	// 0 = unbounded.
	Bound int
	// Horizon is the virtual urgency assigned to deadline-less items:
	// they order as if due Horizon after arrival (default 30s).
	Horizon time.Duration
	// PriorityBias is the deadline credit per priority unit (default 1s).
	PriorityBias time.Duration
	// AgingRate weighs arrival age into the ordering key, in (0, 1]
	// (default 0.5). Larger values converge toward FIFO faster.
	AgingRate float64
}

func (c Config) normalize() Config {
	if c.Horizon <= 0 {
		c.Horizon = 30 * time.Second
	}
	if c.PriorityBias <= 0 {
		c.PriorityBias = time.Second
	}
	if c.AgingRate <= 0 || c.AgingRate > 1 {
		c.AgingRate = 0.5
	}
	return c
}

type entry struct {
	it  Item
	key float64
}

// Queue is the bounded deadline-aware admission queue: a binary heap
// over the static ordering key. Not safe for concurrent use.
type Queue struct {
	cfg     Config
	items   []entry
	costSum int
	shedBuf []Item
}

// New builds an empty queue.
func New(cfg Config) *Queue {
	return &Queue{cfg: cfg.normalize()}
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Bound reports the configured capacity (0 = unbounded).
func (q *Queue) Bound() int { return q.cfg.Bound }

// Full reports whether the queue is at its bound.
func (q *Queue) Full() bool { return q.cfg.Bound > 0 && len(q.items) >= q.cfg.Bound }

// CostSum is the total predicted service demand (token rows) waiting in
// the queue — the backlog the sustainable-rate admission check prices.
func (q *Queue) CostSum() int { return q.costSum }

// keyOf computes the item's static ordering key (see the package doc).
func (q *Queue) keyOf(it Item) float64 {
	eff := it.TTFTDeadline
	if eff == 0 {
		eff = it.Deadline
	}
	if eff == 0 {
		eff = it.Arrived + q.cfg.Horizon
	}
	return float64(eff) - float64(q.cfg.PriorityBias)*float64(it.Priority) +
		q.cfg.AgingRate*float64(it.Arrived)
}

// less is the heap order: smaller key first, item ID breaking ties.
func (q *Queue) less(a, b entry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.it.ID < b.it.ID
}

// Push enqueues it; false means the queue is at its bound and the
// caller must reject the request as overloaded.
func (q *Queue) Push(it Item) bool {
	if q.Full() {
		return false
	}
	q.items = append(q.items, entry{it: it, key: q.keyOf(it)})
	q.costSum += it.Cost
	q.up(len(q.items) - 1)
	return true
}

// Pop removes and returns the most urgent item.
func (q *Queue) Pop() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	it := q.items[0].it
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	q.costSum -= it.Cost
	return it, true
}

// Peek returns the most urgent item without removing it.
func (q *Queue) Peek() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	return q.items[0].it, true
}

// MinTTFTSlack reports the smallest remaining TTFT budget among queued
// deadline-carrying items; ok is false when none carries one.
func (q *Queue) MinTTFTSlack(now time.Duration) (time.Duration, bool) {
	min, ok := time.Duration(0), false
	for i := range q.items {
		dl := q.items[i].it.TTFTDeadline
		if dl == 0 {
			continue
		}
		if slack := dl - now; !ok || slack < min {
			min, ok = slack, true
		}
	}
	return min, ok
}

// Shed removes and returns every queued item whose TTFT deadline is
// provably unmeetable: now plus the caller's optimistic lower bound on
// the item's wait (nil = zero) already exceeds it. The returned slice
// is reused by the next Shed call.
func (q *Queue) Shed(now time.Duration, minWait func(Item) time.Duration) []Item {
	q.shedBuf = q.shedBuf[:0]
	if len(q.items) == 0 {
		return q.shedBuf
	}
	keep := q.items[:0]
	for _, e := range q.items {
		dl := e.it.TTFTDeadline
		if dl > 0 {
			w := time.Duration(0)
			if minWait != nil {
				w = minWait(e.it)
			}
			if now+w > dl {
				q.shedBuf = append(q.shedBuf, e.it)
				q.costSum -= e.it.Cost
				continue
			}
		}
		keep = append(keep, e)
	}
	q.items = keep
	if len(q.shedBuf) > 0 {
		// Filtering broke the heap shape; rebuild bottom-up.
		for i := len(q.items)/2 - 1; i >= 0; i-- {
			q.down(i)
		}
	}
	return q.shedBuf
}

func (q *Queue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(q.items[i], q.items[p]) {
			break
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

func (q *Queue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && q.less(q.items[l], q.items[m]) {
			m = l
		}
		if r < n && q.less(q.items[r], q.items[m]) {
			m = r
		}
		if m == i {
			return
		}
		q.items[i], q.items[m] = q.items[m], q.items[i]
		i = m
	}
}
