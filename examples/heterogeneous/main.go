// Heterogeneous: reproduce the paper's constrained-hardware scenario
// (§V-B, Fig 7c) — growing a Gigabit Ethernet cluster from 4 fast Xeon
// nodes to 13 mixed nodes by adding five old desktop Optiplexes, and
// watching how each strategy copes with slow stages in the pipeline.
package main

import (
	"fmt"
	"log"

	pipeinfer "github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/engine"
)

func main() {
	b := pipeinfer.ClusterB() // 8x Xeon E5 + 5x Optiplex, GigE
	pair := pipeinfer.CPUPairs()[0]

	fmt.Println("Dolphin-70B + TinyLlama on the heterogeneous Beowulf cluster (GigE)")
	fmt.Printf("%-8s  %-28s  %12s  %10s\n", "nodes", "composition", "strategy", "tokens/s")

	for _, n := range []int{4, 8, 13} {
		cluster := b.Take(n)
		composition := fmt.Sprintf("%dx Xeon E5", min(n, 8))
		if n > 8 {
			composition += fmt.Sprintf(" + %dx Optiplex", n-8)
		}
		for _, s := range []pipeinfer.Strategy{pipeinfer.Iterative, pipeinfer.Speculative, pipeinfer.PipeInfer} {
			out, err := pipeinfer.Simulate(pipeinfer.SimulateOptions{
				Cluster:   cluster,
				Pair:      pair,
				Strategy:  s,
				CFG:       engine.Config{MaxNew: 192},
				PromptLen: 128,
				Seed:      11,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8d  %-28s  %12s  %10.2f\n", n, composition, s, out.Stats.Speed())
		}
	}
	fmt.Println("\nSlow nodes stretch the pipeline's bottleneck stage; PipeInfer's")
	fmt.Println("overlapped runs and early cancellation absorb the imbalance better")
	fmt.Println("than serialized speculate-then-verify scheduling.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
