// Lowbandwidth: quantify the interconnect-tolerance claim (§I, §V-B) by
// running the same 8-node generation over Infiniband EDR, Gigabit
// Ethernet, and a deliberately dreadful 100 Mb/s + 1 ms link, and
// comparing how much of each strategy's speed survives.
package main

import (
	"fmt"
	"log"
	"time"

	pipeinfer "github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/cost"
	"github.com/pipeinfer/pipeinfer/internal/engine"
)

func main() {
	links := []cost.LinkSpec{
		cost.InfinibandEDR,
		cost.GigabitEthernet,
		{Name: "100Mb/s, 1ms (awful)", Bytes: 12.5e6, Latency: time.Millisecond},
	}
	pair := pipeinfer.CPUPairs()[0]

	baseline := map[pipeinfer.Strategy]float64{}
	fmt.Printf("%-24s  %-12s  %10s  %10s\n", "interconnect", "strategy", "tokens/s", "retained")
	for li, link := range links {
		cluster := pipeinfer.ClusterC().Take(8)
		cluster.Link = link
		for _, s := range []pipeinfer.Strategy{pipeinfer.Speculative, pipeinfer.PipeInfer} {
			out, err := pipeinfer.Simulate(pipeinfer.SimulateOptions{
				Cluster:   cluster,
				Pair:      pair,
				Strategy:  s,
				CFG:       engine.Config{MaxNew: 192},
				PromptLen: 128,
				Seed:      3,
			})
			if err != nil {
				log.Fatal(err)
			}
			speed := out.Stats.Speed()
			if li == 0 {
				baseline[s] = speed
			}
			fmt.Printf("%-24s  %-12s  %10.2f  %9.0f%%\n",
				link.Name, s, speed, 100*speed/baseline[s])
		}
	}
	fmt.Println("\nPipeInfer keeps more of its Infiniband speed on slow links: buffered")
	fmt.Println("sends and overlapped runs hide wire latency that serialized")
	fmt.Println("speculative inference pays on every speculate-verify round trip.")
}
