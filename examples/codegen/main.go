// Codegen: the paper's first evaluation prompt asks the model to emit a
// Python program with no explanation (§V-A). This example runs that
// scenario end to end on the real-compute backend — genuine transformer
// math pipelined across goroutine stages — and proves the §V-B guarantee:
// all three strategies produce byte-identical output under greedy
// sampling, no matter how badly the draft model is aligned.
package main

import (
	"fmt"
	"log"

	pipeinfer "github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/engine"
	"github.com/pipeinfer/pipeinfer/internal/token"
)

func main() {
	cfg := pipeinfer.TinyModel()
	tk, err := pipeinfer.NewTokenizer(cfg.VocabSize)
	if err != nil {
		log.Fatal(err)
	}
	prompt := tk.Encode(token.Prompt(token.PromptCode, 1))[:64]

	base := pipeinfer.GenerateOptions{
		Nodes:    4,
		CFG:      engine.Config{MaxNew: 32},
		ModelCfg: cfg,
		Seed:     2024,
		Prompt:   prompt,
	}

	ref, err := pipeinfer.ReferenceGreedy(base, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference (single model, greedy): %q\n\n", tk.Decode(ref))

	// Sweep draft alignment from near-perfect to hopeless: output must
	// never change, only the speculation statistics.
	for _, noise := range []float32{0.005, 0.2, 1.5} {
		for _, s := range []pipeinfer.Strategy{pipeinfer.Speculative, pipeinfer.PipeInfer} {
			opts := base
			opts.Strategy = s
			opts.DraftNoise = noise
			out, err := pipeinfer.Generate(opts)
			if err != nil {
				log.Fatal(err)
			}
			same := true
			for i := range ref {
				if out.Tokens[i] != ref[i] {
					same = false
					break
				}
			}
			status := "IDENTICAL"
			if !same {
				status = "MISMATCH (bug!)"
			}
			fmt.Printf("%-12s noise=%.3f  acceptance=%4.0f%%  cancelled=%2d  output %s\n",
				s, noise, out.Stats.AcceptanceRate()*100, out.Stats.RunsCancelled, status)
			if !same {
				log.Fatal("correctness violation")
			}
		}
	}
	fmt.Println("\nLossless acceleration: speculation changes the schedule, never the tokens.")
}
