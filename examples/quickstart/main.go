// Quickstart: simulate PipeInfer against the two baselines on an 8-node
// cluster (the paper's reference configuration) and print the headline
// comparison. Start here.
package main

import (
	"fmt"
	"log"

	pipeinfer "github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/engine"
)

func main() {
	cluster := pipeinfer.ClusterC().Take(8) // 8x Xeon Gold, Infiniband EDR
	pair := pipeinfer.CPUPairs()[0]         // Dolphin-70B + TinyLlama (79% acceptance)

	fmt.Printf("cluster: %d nodes, %s\n", len(cluster.Nodes), cluster.Link.Name)
	fmt.Printf("models:  %s -> %s (acceptance %.0f%%)\n\n",
		pair.Draft.Name, pair.Target.Name, pair.Acceptance*100)

	for _, s := range []pipeinfer.Strategy{pipeinfer.Iterative, pipeinfer.Speculative, pipeinfer.PipeInfer} {
		out, err := pipeinfer.Simulate(pipeinfer.SimulateOptions{
			Cluster:   cluster,
			Pair:      pair,
			Strategy:  s,
			CFG:       engine.Config{MaxNew: 256},
			PromptLen: 128,
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %6.2f tokens/s   TTFT %8v   ITL %8v   cancelled %d/%d runs\n",
			s, out.Stats.Speed(), out.Stats.TTFT().Round(1e6), out.Stats.ITL().Round(1e6),
			out.Stats.RunsCancelled, out.Stats.RunsLaunched)
	}
	fmt.Println("\nAll three strategies emit identical tokens (greedy sampling);")
	fmt.Println("PipeInfer gets there faster by keeping every stage busy.")
}
