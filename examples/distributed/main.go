// Distributed: run PipeInfer across a genuine TCP mesh — every rank owns
// its own listener and socket connections, exactly as separate machines
// would (cmd/pipeinfer-node runs the same code as separate OS processes).
// Rank 0 drafts and samples; ranks 1..N-1 hold target-model shards.
// Deterministic seeds stand in for weight-file distribution: every rank
// derives identical weights locally.
package main

import (
	"fmt"
	"log"
	"sync"

	pipeinfer "github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/backend/realbk"
	"github.com/pipeinfer/pipeinfer/internal/comm/tcpcomm"
	"github.com/pipeinfer/pipeinfer/internal/engine"
)

func main() {
	const nodes = 4
	addrs, err := tcpcomm.FreeAddrs(nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mesh addresses:")
	for rank, a := range addrs {
		fmt.Printf("  rank %d: %s\n", rank, a)
	}

	cfg := pipeinfer.TinyModel()
	tk, err := pipeinfer.NewTokenizer(cfg.VocabSize)
	if err != nil {
		log.Fatal(err)
	}
	opts := realbk.Options{
		Nodes:      nodes,
		Strategy:   pipeinfer.PipeInfer,
		CFG:        engine.Config{MaxNew: 32},
		ModelCfg:   cfg,
		Seed:       7,
		DraftNoise: 0.01,
		Prompt:     tk.Encode("Distributed speculative inference over TCP sockets"),
	}

	ref, err := realbk.ReferenceGreedy(opts, 32)
	if err != nil {
		log.Fatal(err)
	}

	outcomes := make([]realbk.Outcome, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for rank := 0; rank < nodes; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep, err := tcpcomm.Dial(tcpcomm.Config{Rank: rank, Addrs: addrs})
			if err != nil {
				errs[rank] = err
				return
			}
			defer ep.Close()
			outcomes[rank], errs[rank] = realbk.RunRank(ep, opts)
		}()
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", rank, err)
		}
	}

	out := outcomes[0]
	match := true
	for i := range ref {
		if out.Tokens[i] != ref[i] {
			match = false
			break
		}
	}
	fmt.Printf("\ngenerated %d tokens at %.1f tok/s over TCP (acceptance %.0f%%, %d/%d runs cancelled)\n",
		out.Stats.Generated, out.Stats.Speed(), out.Stats.AcceptanceRate()*100,
		out.Stats.RunsCancelled, out.Stats.RunsLaunched)
	if match {
		fmt.Println("output identical to the single-model greedy reference — lossless across the wire")
	} else {
		log.Fatal("output mismatch!")
	}
}
