// Storyteller: the paper's second evaluation prompt asks for a fictional
// tale about a warrior named Goliath (§V-A). This example generates it on
// the real-compute backend with PipeInfer while streaming per-token
// latency, then prints the burst structure speculation produces: tokens
// arrive in groups as whole speculated chains are verified at once.
package main

import (
	"fmt"
	"log"
	"time"

	pipeinfer "github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/engine"
	"github.com/pipeinfer/pipeinfer/internal/token"
)

func main() {
	cfg := pipeinfer.TinyModel()
	tk, err := pipeinfer.NewTokenizer(cfg.VocabSize)
	if err != nil {
		log.Fatal(err)
	}
	prompt := tk.Encode(token.Prompt(token.PromptStory, 1))[:48]

	out, err := pipeinfer.Generate(pipeinfer.GenerateOptions{
		Nodes:      4,
		Strategy:   pipeinfer.PipeInfer,
		CFG:        engine.Config{MaxNew: 40, MicroBatch: 2},
		ModelCfg:   cfg,
		Seed:       99,
		DraftNoise: 0.01,
		Prompt:     prompt,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tale (tiny random model, so expect abstract art): %q\n\n", tk.Decode(out.Tokens))

	// Token acceptance bursts: count how many tokens landed at each
	// acceptance timestamp. Burst sizes > 1 are verified speculation.
	times := out.Stats.AcceptTimes
	fmt.Println("acceptance bursts (tokens arriving together):")
	i := 0
	for i < len(times) {
		j := i
		for j < len(times) && times[j] == times[i] {
			j++
		}
		fmt.Printf("  t=%-12v burst=%d\n", times[i].Round(time.Microsecond), j-i)
		i = j
	}
	fmt.Printf("\n%d tokens, acceptance rate %.0f%%, %d runs launched, %d cancelled\n",
		out.Stats.Generated, out.Stats.AcceptanceRate()*100,
		out.Stats.RunsLaunched, out.Stats.RunsCancelled)
}
