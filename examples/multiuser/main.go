// Multiuser: a walkthrough of the multi-request serving layer.
//
// One pipeline, many users. The serving layer statically partitions the
// KV cache's 64 sequence ids into per-session namespaces, admits queued
// requests to session slots round-robin, and interleaves every session's
// runs into a single pipelined stream — so stages that would sit idle
// between one request's runs evaluate another request's instead. The
// walkthrough runs the same workload several ways:
//
//  1. serially, one pipeline rebuilt per request (no serving layer);
//  2. served concurrently on the real backend, verifying every session
//     against its single-model greedy reference;
//  3. served with cross-session batching (-batch/-batch-window): up to
//     -batch users' decode steps coalesce into one multi-row pipeline
//     run, amortising per-run overhead, with outputs still bit-identical
//     to each user's solo run;
//  4. a prefill burst (-prefill-chunk): 8 sessions with long prompts
//     arrive simultaneously, once with whole-prompt prefill runs (every
//     user's first token waits behind the longest prompt at the head of
//     the FIFO) and once with chunked cross-session prefill batching
//     (prompts split into chunks scheduled shortest-remaining-first,
//     riding in the same runs as decode rows) — mean TTFT printed for
//     both, outputs bit-identical;
//  5. served with the KV cache oversubscribed (-kv-cells/-kv-page), so
//     sessions are preempted — their pages evicted pipeline-wide — and
//     readmitted by recomputing their prefix, with outputs still
//     bit-identical;
//  6. served at 70B scale on the simulated cluster, where the
//     pipeline-fill and batch-amortisation wins are measured in exact
//     virtual time;
//  7. served through injected faults: a seeded fault plan drops result
//     frames and blacks out the result link mid-run, the run watchdog
//     (-run-timeout) declares the affected runs failed, and the hit
//     sessions recover by eviction + prefix recompute — with every
//     user's output still bit-identical;
//  8. served with the live telemetry registry attached: streaming
//     log-bucketed histograms and per-stage busy/bubble meters are
//     observed from the hot path without allocating, so a snapshot taken
//     mid-burst — here from an OnToken hook while sessions are still
//     decoding — shows the p50/p99 time-to-first-token and each stage's
//     bubble fraction of the run in flight, exactly what a /metrics
//     scrape of pipeinfer-serve -metrics-addr would report;
//  9. served with shared-prefix reuse: 8 users open with the same long
//     system prompt, so the first (cold) user's completed prefill is
//     published into a block-hash trie and every later user's admission
//     maps those refcounted, read-only KV pages into their own
//     namespace, prefilling only their question — first-token wait
//     collapses, outputs still bit-identical;
//  10. served through an overload burst: 10 users rush 2 session slots,
//     half of them carrying an already-unmeetable TTFT SLO and two more
//     arriving past the bounded admission queue — the doomed are shed
//     before any prefill compute is spent, the over-bound are refused
//     with a distinguishable "overloaded" result, and the survivors
//     meet every deadline with outputs bit-identical to the
//     uncontended run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	pipeinfer "github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/comm"
	"github.com/pipeinfer/pipeinfer/internal/comm/faultcomm"
	"github.com/pipeinfer/pipeinfer/internal/engine"
	"github.com/pipeinfer/pipeinfer/internal/telemetry"
	"github.com/pipeinfer/pipeinfer/internal/trace"
)

func main() {
	const (
		users  = 6
		tokens = 24
		nodes  = 3
	)
	// Memory-pressure scenarios are reproducible from the CLI: -kv-cells
	// caps the per-stage KV cache (0 picks a deliberately tight default
	// for step 3), -kv-page sets the page granularity.
	kvCells := flag.Int("kv-cells", 0, "per-stage KV capacity in cells for the oversubscribed run (0 = half the fully provisioned size)")
	kvPage := flag.Int("kv-page", 8, "KV page size in cells")
	batchSz := flag.Int("batch", 4, "cross-session batch width for the batched run (sessions coalesced per pipeline run)")
	batchWin := flag.Int("batch-window", 0, "scheduler steps a partial batch may wait while the pipeline is busy")
	chunk := flag.Int("prefill-chunk", 24, "prefill chunk budget (tokens per run) for the burst step")
	flag.Parse()
	cfg := pipeinfer.TinyModel()
	cfg.NLayers = 6
	tk, err := pipeinfer.NewTokenizer(cfg.VocabSize)
	if err != nil {
		log.Fatal(err)
	}

	// Each user submits their own prompt.
	reqs := make([]pipeinfer.ServeRequest, users)
	for i := range reqs {
		reqs[i] = pipeinfer.ServeRequest{
			Prompt: tk.Encode(fmt.Sprintf("user %d asks", i)),
			MaxNew: tokens,
		}
	}

	// 1. No serving layer: one-shot Generate per request, back to back.
	serialStart := time.Now()
	for _, r := range reqs {
		if _, err := pipeinfer.Generate(pipeinfer.GenerateOptions{
			Nodes: nodes, Strategy: pipeinfer.Iterative,
			CFG: engine.Config{MaxNew: tokens}, ModelCfg: cfg, Seed: 42, Prompt: r.Prompt,
		}); err != nil {
			log.Fatal(err)
		}
	}
	serial := time.Since(serialStart)

	// 2. The serving layer: one persistent pipeline, all users at once.
	// MaxSessions bounds concurrency; extra requests queue for free slots.
	serveStart := time.Now()
	out, err := pipeinfer.Serve(pipeinfer.ServeOptions{
		Nodes:       nodes,
		CFG:         engine.Config{MaxNew: tokens},
		ModelCfg:    cfg,
		Seed:        42,
		MaxSessions: 4,
		Requests:    reqs,
	})
	if err != nil {
		log.Fatal(err)
	}
	served := time.Since(serveStart)

	fmt.Printf("%d users x %d tokens over %d nodes\n", users, tokens, nodes)
	fmt.Printf("serial one-shot runs: %8v  (%.0f tok/s aggregate)\n",
		serial.Round(time.Millisecond), float64(users*tokens)/serial.Seconds())
	fmt.Printf("serving layer:        %8v  (%.0f tok/s aggregate)\n\n",
		served.Round(time.Millisecond), float64(users*tokens)/served.Seconds())

	// Every session's output is bit-identical to the output that user
	// would have gotten with the whole pipeline to themselves.
	for i, res := range out.Results {
		ref, err := pipeinfer.ReferenceGreedy(pipeinfer.GenerateOptions{
			ModelCfg: cfg, Seed: 42, Prompt: reqs[i].Prompt,
		}, tokens)
		if err != nil {
			log.Fatal(err)
		}
		for j := range ref {
			if res.Tokens[j] != ref[j] {
				log.Fatalf("user %d got a different answer under multiplexing", i)
			}
		}
	}
	fmt.Println("every user's output is bit-identical to their solo greedy run")

	// 3. Cross-session batching: every user's single-token decode steps
	// coalesce into shared multi-row pipeline runs (up to -batch users per
	// run), paying the per-run overhead — wire header, FIFO record, KV
	// transaction, stage wakeup — once per batch instead of once per user.
	// Per-row sequence sets keep attention per-user-isolated, so outputs
	// must not change by a bit.
	batchStart := time.Now()
	batched, err := pipeinfer.Serve(pipeinfer.ServeOptions{
		Nodes:       nodes,
		CFG:         engine.Config{MaxNew: tokens},
		ModelCfg:    cfg,
		Seed:        42,
		MaxSessions: users,
		MaxBatch:    *batchSz,
		BatchWindow: *batchWin,
		Requests:    reqs,
	})
	if err != nil {
		log.Fatal(err)
	}
	batchedWall := time.Since(batchStart)
	for i := range reqs {
		if len(batched.Results[i].Tokens) != len(out.Results[i].Tokens) {
			log.Fatalf("user %d got a different answer under batching", i)
		}
		for j, tok := range out.Results[i].Tokens {
			if batched.Results[i].Tokens[j] != tok {
				log.Fatalf("user %d got a different answer under batching", i)
			}
		}
	}
	fmt.Printf("\ncross-session batching (width %d): %8v, %d multi-user runs (mean width %.1f, %d vs %d runs total) — outputs unchanged\n",
		*batchSz, batchedWall.Round(time.Millisecond), batched.Stats.BatchedRuns,
		batched.Stats.MeanBatch(), batched.Stats.RunsLaunched, out.Stats.RunsLaunched)

	// 4. A prefill burst: 8 users with long prompts (one very long) press
	// enter at the same instant. Whole-prompt prefills complete strictly
	// in FIFO order, so everyone's first token queues behind the longest
	// prompt; chunked cross-session prefill splits every prompt into
	// -prefill-chunk-token chunks scheduled shortest-remaining-first, so
	// short prompts overtake long ones and mean time-to-first-token
	// drops — with every output still bit-identical.
	const burstUsers = 8
	burstReqs := make([]pipeinfer.ServeRequest, burstUsers)
	for i := range burstReqs {
		words := 24
		if i == 0 {
			words = 160 // the long prompt every other user would queue behind
		}
		text := fmt.Sprintf("user %d elaborates:", i)
		for w := 0; w < words; w++ {
			text += fmt.Sprintf(" point %d", w)
		}
		burstReqs[i] = pipeinfer.ServeRequest{Prompt: tk.Encode(text), MaxNew: 8}
	}
	meanTTFT := func(out pipeinfer.ServeOutcome) time.Duration {
		var sum time.Duration
		for _, r := range out.Results {
			sum += r.Stats.TimeToFirst()
		}
		return (sum / burstUsers).Round(time.Millisecond)
	}
	burstRun := func(prefillChunk int) pipeinfer.ServeOutcome {
		out, err := pipeinfer.Serve(pipeinfer.ServeOptions{
			Nodes:        nodes,
			CFG:          engine.Config{MaxNew: 8},
			ModelCfg:     cfg,
			Seed:         42,
			MaxSessions:  burstUsers,
			MaxBatch:     *batchSz,
			PrefillChunk: prefillChunk,
			Requests:     burstReqs,
		})
		if err != nil {
			log.Fatal(err)
		}
		return out
	}
	whole := burstRun(0)
	chunked := burstRun(*chunk)
	for i := range burstReqs {
		if len(whole.Results[i].Tokens) != len(chunked.Results[i].Tokens) {
			log.Fatalf("user %d got a different answer under chunked prefill", i)
		}
		for j, tok := range whole.Results[i].Tokens {
			if chunked.Results[i].Tokens[j] != tok {
				log.Fatalf("user %d got a different answer under chunked prefill", i)
			}
		}
	}
	fmt.Printf("\nprefill burst (%d users at once, one long prompt):\n", burstUsers)
	fmt.Printf("  whole-prompt prefills:  mean TTFT %v\n", meanTTFT(whole))
	fmt.Printf("  chunked prefill (%d-token chunks): mean TTFT %v (%d chunk runs) — outputs unchanged\n",
		*chunk, meanTTFT(chunked), chunked.Stats.PrefillBatchedRuns)

	// 5. Oversubscribed KV: a cache too small to hold every user at once.
	// The scheduler drops speculative pages, preempts idle sessions (their
	// namespaces evicted on every stage), parks the requests, and readmits
	// them by recomputing their prefix — outputs must not change by a bit.
	cells := *kvCells
	if cells <= 0 {
		// Half of what the six 24-token sessions would need at once.
		cells = users * (8 + tokens) / 2
	}
	pressured, err := pipeinfer.Serve(pipeinfer.ServeOptions{
		Nodes:       nodes,
		CFG:         engine.Config{MaxNew: tokens},
		ModelCfg:    cfg,
		Seed:        42,
		MaxSessions: users,
		KVCells:     cells,
		KVPageSize:  *kvPage,
		Requests:    reqs,
		OnPreempt:   func(req int) { fmt.Printf("  user %d preempted (KV evicted, parked)\n", req) },
		OnReadmit:   func(req int) { fmt.Printf("  user %d readmitted (prefix recompute)\n", req) },
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := range reqs {
		if len(pressured.Results[i].Tokens) != len(out.Results[i].Tokens) {
			log.Fatalf("user %d got a different answer under memory pressure", i)
		}
		for j, tok := range out.Results[i].Tokens {
			if pressured.Results[i].Tokens[j] != tok {
				log.Fatalf("user %d got a different answer under memory pressure", i)
			}
		}
	}
	fmt.Printf("\noversubscribed KV (%d cells, page %d): %d spec drops, %d preemptions, %d readmissions — outputs unchanged\n",
		cells, *kvPage, pressured.Stats.SpecDrops, pressured.Stats.Preemptions, pressured.Stats.Readmissions)

	// 6. The same scheduling at 70B scale, in virtual time: 16 tenants on
	// a 8-node cluster with per-session speculation and cross-session
	// batching.
	sim, err := pipeinfer.SimulateServe(pipeinfer.SimulateServeOptions{
		Cluster:     pipeinfer.ClusterC().Take(8),
		Pair:        pipeinfer.CPUPairs()[0],
		CFG:         engine.Config{MaxNew: 128},
		Sessions:    16,
		PromptLen:   128,
		Seed:        42,
		Speculate:   true,
		MaxSessions: 8,
		MaxBatch:    *batchSz,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated 70B serving: 16 tenants, %d tokens in %v virtual (%.1f tok/s aggregate, %.0f%% acceptance)\n",
		sim.Stats.Generated, sim.Stats.Done.Round(time.Millisecond),
		sim.Stats.Speed(), sim.Stats.AcceptanceRate()*100)

	// 7. Fault injection: the same workload through a deliberately lossy
	// network. The seeded plan drops two result frames outright and
	// blacks out the result link for a few milliseconds mid-run; the run
	// watchdog (RunTimeout) detects both — a result arriving for a newer
	// run proves the older one's is lost, and a silent pipeline fails at
	// its deadline — cancels the failed runs pipeline-wide, evicts the
	// affected sessions' KV, and readmits them by prefix recompute.
	// Recovery is invisible in the output: greedy decoding is
	// deterministic in the accepted prefix, so every user's answer must
	// still match their solo run bit for bit.
	plan := &faultcomm.Plan{Seed: 1, Rules: []faultcomm.Rule{
		{Src: nodes - 1, Dst: 0, Tag: int(comm.TagResult), Kind: faultcomm.Drop, Nth: 5},
		{Src: nodes - 1, Dst: 0, Tag: int(comm.TagResult), Kind: faultcomm.Drop, Nth: 31},
		{Src: nodes - 1, Dst: 0, Tag: -1, Kind: faultcomm.Partition, From: 2 * time.Millisecond, Until: 8 * time.Millisecond},
	}}
	faulted, err := pipeinfer.Serve(pipeinfer.ServeOptions{
		Nodes:       nodes,
		CFG:         engine.Config{MaxNew: tokens},
		ModelCfg:    cfg,
		Seed:        42,
		MaxSessions: users,
		RunTimeout:  50 * time.Millisecond,
		WrapEndpoint: func(_ int, ep comm.Endpoint) comm.Endpoint {
			return faultcomm.Wrap(ep, plan)
		},
		OnRecover: func(req int) { fmt.Printf("  user %d recovered (run failed, prefix recompute)\n", req) },
		Requests:  reqs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfault injection (%d faults: dropped results + a blackout window):\n", plan.Stats().Total())
	for i := range reqs {
		if len(faulted.Results[i].Tokens) != len(out.Results[i].Tokens) {
			log.Fatalf("user %d got a different answer under faults", i)
		}
		for j, tok := range out.Results[i].Tokens {
			if faulted.Results[i].Tokens[j] != tok {
				log.Fatalf("user %d got a different answer under faults", i)
			}
		}
	}
	fmt.Printf("  %d run timeouts, %d session recoveries — outputs unchanged\n",
		faulted.Stats.RunTimeouts, faulted.Stats.Recoveries)

	// 8. Live telemetry: rerun the prefill burst with the registry
	// attached. Observation is atomics-only, so the snapshot below is
	// taken *while* sessions are still decoding — a mid-burst OnToken
	// hook reads the streaming TTFT histogram and the per-stage meters
	// the moment the 16th token lands, the programmatic equivalent of
	// scraping /metrics mid-serve.
	reg := telemetry.New()
	var (
		once      sync.Once
		midTokens int
	)
	live, err := pipeinfer.Serve(pipeinfer.ServeOptions{
		Nodes:        nodes,
		CFG:          engine.Config{MaxNew: 8},
		ModelCfg:     cfg,
		Seed:         42,
		MaxSessions:  burstUsers,
		MaxBatch:     *batchSz,
		PrefillChunk: *chunk,
		Obs:          reg,
		Requests:     burstReqs,
		OnToken: func(req int, tok pipeinfer.Token) {
			midTokens++
			if midTokens < 16 {
				return
			}
			once.Do(func() {
				fmt.Printf("\nlive telemetry, snapshotted mid-burst (after %d tokens, sessions still decoding):\n", midTokens)
				fmt.Printf("  TTFT p50 %v p99 %v over %d first tokens so far\n",
					reg.TTFT.QuantileDuration(0.5).Round(time.Microsecond),
					reg.TTFT.QuantileDuration(0.99).Round(time.Microsecond),
					reg.TTFT.Count())
				now := reg.Now()
				reg.EachStage(func(name string, m *trace.StageMeter) {
					fmt.Printf("  stage %s: bubble %.0f%% of the window so far (%d evals)\n",
						name, m.BubbleFraction(now)*100, m.Evals())
				})
			})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	final := reg.Snapshot()
	fmt.Printf("  final: %d tokens, batch width p50 %d rows, ITL p50 %v — mid-burst and final views from one registry\n",
		final.Generated, reg.BatchWidth.Quantile(0.5), reg.ITL.QuantileDuration(0.5).Round(time.Microsecond))
	_ = live

	// 9. Shared-prefix reuse: every user's prompt opens with the same long
	// system prompt. Cold, each user pays a full-prompt prefill. With the
	// prefix cache on, the first completed prompt publishes its
	// page-aligned prefix into a block-hash trie; every later admission
	// looks its prompt up, maps the matching pages read-only into its own
	// namespace (one physical copy, refcounted), and prefills only its
	// question. Users are served one at a time here so each user's
	// first-token wait is a clean prefill span — user i enters their slot
	// the moment user i-1 finishes.
	const sharedUsers = 8
	sysText := "System: you are a careful assistant."
	for w := 0; w < 120; w++ {
		sysText += fmt.Sprintf(" rule %d", w)
	}
	sharedReqs := make([]pipeinfer.ServeRequest, sharedUsers)
	for i := range sharedReqs {
		sharedReqs[i] = pipeinfer.ServeRequest{
			Prompt: tk.Encode(fmt.Sprintf("%s User %d asks something", sysText, i)),
			MaxNew: 8,
		}
	}
	sharedRun := func(prefixOn bool) pipeinfer.ServeOutcome {
		out, err := pipeinfer.Serve(pipeinfer.ServeOptions{
			Nodes:       nodes,
			CFG:         engine.Config{MaxNew: 8},
			ModelCfg:    cfg,
			Seed:        42,
			MaxSessions: 1, // serial admission: clean cold-vs-hit prefill spans
			KVCells:     4096,
			KVPageSize:  *kvPage,
			PrefixCache: prefixOn,
			Requests:    sharedReqs,
		})
		if err != nil {
			log.Fatal(err)
		}
		return out
	}
	coldRun := sharedRun(false)
	warmRun := sharedRun(true)
	for i := range sharedReqs {
		if len(coldRun.Results[i].Tokens) != len(warmRun.Results[i].Tokens) {
			log.Fatalf("user %d got a different answer with the prefix cache on", i)
		}
		for j, tok := range coldRun.Results[i].Tokens {
			if warmRun.Results[i].Tokens[j] != tok {
				log.Fatalf("user %d got a different answer with the prefix cache on", i)
			}
		}
	}
	// Per-user prefill span under serial admission: PrefillDone relative
	// to the previous user's completion (both absolute serve times).
	span := func(out pipeinfer.ServeOutcome, i int) time.Duration {
		if i == 0 {
			return out.Results[0].Stats.PrefillDone
		}
		return out.Results[i].Stats.PrefillDone - out.Results[i-1].Stats.Done
	}
	var coldSum, hitSum time.Duration
	for i := 1; i < sharedUsers; i++ {
		coldSum += span(coldRun, i)
		hitSum += span(warmRun, i)
	}
	coldWait := coldSum / (sharedUsers - 1)
	hitWait := hitSum / (sharedUsers - 1)
	fmt.Printf("\nshared system prompt (%d users, %d-token prompts):\n",
		sharedUsers, len(sharedReqs[0].Prompt))
	fmt.Printf("  prefix cache off: first-token wait %v per user (full prefill every time)\n",
		coldWait.Round(time.Millisecond))
	fmt.Printf("  prefix cache on:  first-token wait %v per user after the cold first (%.1fx faster; %d hits reused %d prompt tokens) — outputs unchanged\n",
		hitWait.Round(time.Millisecond), float64(coldWait)/float64(hitWait),
		warmRun.Stats.PrefixHits, warmRun.Stats.PrefixHitTokens)

	// 10. Overload control: 10 users rush a front door with 2 session
	// slots and an 8-deep admission queue. Users 0-3 are patient (mixed
	// priorities, a far-future completion deadline); users 4-7 carry a
	// TTFT SLO that is already past, so the scheduler sheds them during
	// admission — before a single token of their prompts is prefilled;
	// users 8-9 arrive with the queue at its bound and are refused
	// outright. Every request settles with an explicit outcome: served,
	// shed (ErrServeShed), or refused (ErrServeOverloaded) — never a
	// silent drop — and shedding the doomed load must not perturb the
	// survivors by a bit.
	const overloadUsers = 10
	ovReqs := make([]pipeinfer.ServeRequest, overloadUsers)
	for i := range ovReqs {
		ovReqs[i] = pipeinfer.ServeRequest{
			Prompt: tk.Encode(fmt.Sprintf("user %d asks", i)),
			MaxNew: tokens,
		}
		switch {
		case i < 4:
			ovReqs[i].Priority = i % 3
			ovReqs[i].Deadline = time.Hour
		case i < 8:
			ovReqs[i].TTFTDeadline = time.Nanosecond
		}
	}
	overloaded, err := pipeinfer.Serve(pipeinfer.ServeOptions{
		Nodes:       nodes,
		CFG:         engine.Config{MaxNew: tokens},
		ModelCfg:    cfg,
		Seed:        42,
		MaxSessions: 2,
		MaxQueue:    8,
		Requests:    ovReqs,
	})
	if err != nil {
		log.Fatal(err)
	}
	shed, refused := 0, 0
	for i, res := range overloaded.Results {
		switch {
		case errors.Is(res.Err, pipeinfer.ErrServeShed):
			shed++
		case errors.Is(res.Err, pipeinfer.ErrServeOverloaded):
			refused++
		case res.Err != nil:
			log.Fatalf("user %d settled with an unexpected error: %v", i, res.Err)
		default:
			// Survivors are users 0-3, whose prompts match the step-2 run:
			// shedding around them must leave their streams bit-identical.
			for j, tok := range out.Results[i].Tokens {
				if res.Tokens[j] != tok {
					log.Fatalf("user %d got a different answer under overload shedding", i)
				}
			}
		}
	}
	ost := overloaded.Stats
	fmt.Printf("\noverload burst (%d users over 2 slots, queue bound 8):\n", overloadUsers)
	fmt.Printf("  %d shed on an unmeetable TTFT SLO before any prefill compute, %d refused at the admission bound\n",
		shed, refused)
	fmt.Printf("  survivors: %d/%d deadlines met — outputs unchanged\n",
		ost.DeadlineHits, ost.DeadlineHits+ost.DeadlineMisses)
}
