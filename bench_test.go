// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V, §VI). Each benchmark runs the corresponding experiment
// at a reduced-but-meaningful scale (full paper scale is available through
// cmd/pipeinfer-bench -full) and reports the figure's headline quantity as
// a custom metric so regressions in the reproduced shapes are visible in
// benchmark diffs.
package pipeinfer_test

import (
	"sync"
	"testing"

	"github.com/pipeinfer/pipeinfer/internal/cost"
	"github.com/pipeinfer/pipeinfer/internal/engine"
	"github.com/pipeinfer/pipeinfer/internal/harness"
)

// benchParams keeps each figure regeneration around a second.
func benchParams() harness.Params {
	return harness.Params{Reps: 1, MaxNew: 96, PromptLen: 64, BaseSeed: 1234}
}

// The cluster-C grid underlies Figs 4, 5, 6 and 7a; compute it once.
var (
	gridOnce sync.Once
	gridVal  *harness.Grid
	gridErr  error
)

func benchGrid(b *testing.B) *harness.Grid {
	b.Helper()
	gridOnce.Do(func() {
		gridVal, gridErr = harness.RunCPUGrid(benchParams())
	})
	if gridErr != nil {
		b.Fatal(gridErr)
	}
	return gridVal
}

// --- Tables ---

func BenchmarkTableI_ModelPresets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.TableI()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableII_ClusterPresets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.TableII()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIII_GPUPresets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.TableIII()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIV_GPUTestbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.TableIV()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Figs 4/5/6: cluster C sweeps ---

func benchGridFig(b *testing.B, makeFig func(*harness.Grid, int) harness.Figure, sub int, metric string) {
	g := benchGrid(b)
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = makeFig(g, sub)
	}
	// Headline: PipeInfer with the small draft at 8 nodes (series index 3,
	// X index 1 in the 4/8/15/32 sweep).
	b.ReportMetric(fig.Series[3].Points[1].Y, metric)
}

func BenchmarkFig4a_DolphinSpeed(b *testing.B) { benchGridFig(b, harness.Fig4, 0, "pipe8_tok/s") }
func BenchmarkFig4b_GoliathSpeed(b *testing.B) { benchGridFig(b, harness.Fig4, 1, "pipe8_tok/s") }
func BenchmarkFig4c_FalconSpeed(b *testing.B)  { benchGridFig(b, harness.Fig4, 2, "pipe8_tok/s") }
func BenchmarkFig5a_DolphinTTFT(b *testing.B)  { benchGridFig(b, harness.Fig5, 0, "pipe8_ttft_s") }
func BenchmarkFig5b_GoliathTTFT(b *testing.B)  { benchGridFig(b, harness.Fig5, 1, "pipe8_ttft_s") }
func BenchmarkFig5c_FalconTTFT(b *testing.B)   { benchGridFig(b, harness.Fig5, 2, "pipe8_ttft_s") }
func BenchmarkFig6a_DolphinITL(b *testing.B)   { benchGridFig(b, harness.Fig6, 0, "pipe8_itl_s") }
func BenchmarkFig6b_GoliathITL(b *testing.B)   { benchGridFig(b, harness.Fig6, 1, "pipe8_itl_s") }
func BenchmarkFig6c_FalconITL(b *testing.B)    { benchGridFig(b, harness.Fig6, 2, "pipe8_itl_s") }

func BenchmarkFig7a_MemoryEfficiency(b *testing.B) {
	g := benchGrid(b)
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.Fig7a(g)
	}
	// Headline: PipeInfer Dolphin speed-per-GiB at 32 nodes.
	b.ReportMetric(fig.Series[2].Points[3].Y, "pipe32_tok/s/GiB")
}

func BenchmarkFig7b_ClusterA_TTFT(b *testing.B) {
	var fig harness.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = harness.Fig7b(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Series[2].Points[0].Y, "pipe_dolphin_ttft_s")
}

func BenchmarkFig7c_Constrained(b *testing.B) {
	var fig harness.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = harness.Fig7c(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	// PipeInfer Dolphin at 13 heterogeneous nodes.
	b.ReportMetric(fig.Series[2].Points[2].Y, "pipe13_tok/s")
}

func BenchmarkFig8_Ablations(b *testing.B) {
	var fig harness.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = harness.Fig8(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	full := fig.Series[0].Points[0].Y
	noCancel := fig.Series[1].Points[0].Y
	b.ReportMetric(full, "dolphin_full_tok/s")
	b.ReportMetric(full-noCancel, "cancel_gain_tok/s")
}

func BenchmarkFig9_GPUSpeeds(b *testing.B) {
	var fig harness.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = harness.Fig9(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Series[0].Points[0].Y, "pipe_senku_tok/s")
}

func BenchmarkFig10_PromptVariance(b *testing.B) {
	var fig harness.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = harness.Fig10(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Series[0].Points[0].Y, "pipe_prompt1_tok/s")
}

// --- Design-choice ablation benches (DESIGN.md §3) ---

func BenchmarkSweepMicroBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.SweepMicroBatch(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[0].Points[1].Y, "mb2_tok/s")
	}
}

func BenchmarkSweepCutoffReactivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.SweepCutoff(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[1].Points[1].Y, "ref_tok/s")
	}
}

func BenchmarkSweepSeqPartitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.SweepSeqPartitions(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[0].Points[3].Y, "seqs8_tok/s")
	}
}

func BenchmarkSweepAcceptance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.SweepAcceptance(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		// PipeInfer's worst-case floor relative to iterative at 10%
		// acceptance — the "near-zero slowdown" headline.
		b.ReportMetric(fig.Series[2].Points[0].Y/fig.Series[0].Points[0].Y, "pipe/iter@a0.1")
	}
}

// --- Scaling microbenches beyond the paper figures ---

// BenchmarkSimPipeline32Nodes measures simulator throughput itself: how
// fast the DES regenerates a 32-node PipeInfer generation.
func BenchmarkSimPipeline32Nodes(b *testing.B) {
	p := benchParams()
	cond := harness.Condition{
		Cluster:  cost.ClusterC().Take(32),
		Pair:     cost.PairDolphinTiny,
		Strategy: engine.StrategyPipeInfer,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Measure(cond, p); err != nil {
			b.Fatal(err)
		}
	}
}
