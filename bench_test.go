// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V, §VI). Each benchmark runs the corresponding experiment
// at a reduced-but-meaningful scale (full paper scale is available through
// cmd/pipeinfer-bench -full) and reports the figure's headline quantity as
// a custom metric so regressions in the reproduced shapes are visible in
// benchmark diffs.
package pipeinfer_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/cost"
	"github.com/pipeinfer/pipeinfer/internal/engine"
	"github.com/pipeinfer/pipeinfer/internal/harness"
)

// benchParams keeps each figure regeneration around a second.
func benchParams() harness.Params {
	return harness.Params{Reps: 1, MaxNew: 96, PromptLen: 64, BaseSeed: 1234}
}

// The cluster-C grid underlies Figs 4, 5, 6 and 7a; compute it once.
var (
	gridOnce sync.Once
	gridVal  *harness.Grid
	gridErr  error
)

func benchGrid(b *testing.B) *harness.Grid {
	b.Helper()
	gridOnce.Do(func() {
		gridVal, gridErr = harness.RunCPUGrid(benchParams())
	})
	if gridErr != nil {
		b.Fatal(gridErr)
	}
	return gridVal
}

// --- Tables ---

func BenchmarkTableI_ModelPresets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.TableI()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableII_ClusterPresets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.TableII()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIII_GPUPresets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.TableIII()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIV_GPUTestbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.TableIV()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Figs 4/5/6: cluster C sweeps ---

func benchGridFig(b *testing.B, makeFig func(*harness.Grid, int) harness.Figure, sub int, metric string) {
	g := benchGrid(b)
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = makeFig(g, sub)
	}
	// Headline: PipeInfer with the small draft at 8 nodes (series index 3,
	// X index 1 in the 4/8/15/32 sweep).
	b.ReportMetric(fig.Series[3].Points[1].Y, metric)
}

func BenchmarkFig4a_DolphinSpeed(b *testing.B) { benchGridFig(b, harness.Fig4, 0, "pipe8_tok/s") }
func BenchmarkFig4b_GoliathSpeed(b *testing.B) { benchGridFig(b, harness.Fig4, 1, "pipe8_tok/s") }
func BenchmarkFig4c_FalconSpeed(b *testing.B)  { benchGridFig(b, harness.Fig4, 2, "pipe8_tok/s") }
func BenchmarkFig5a_DolphinTTFT(b *testing.B)  { benchGridFig(b, harness.Fig5, 0, "pipe8_ttft_s") }
func BenchmarkFig5b_GoliathTTFT(b *testing.B)  { benchGridFig(b, harness.Fig5, 1, "pipe8_ttft_s") }
func BenchmarkFig5c_FalconTTFT(b *testing.B)   { benchGridFig(b, harness.Fig5, 2, "pipe8_ttft_s") }
func BenchmarkFig6a_DolphinITL(b *testing.B)   { benchGridFig(b, harness.Fig6, 0, "pipe8_itl_s") }
func BenchmarkFig6b_GoliathITL(b *testing.B)   { benchGridFig(b, harness.Fig6, 1, "pipe8_itl_s") }
func BenchmarkFig6c_FalconITL(b *testing.B)    { benchGridFig(b, harness.Fig6, 2, "pipe8_itl_s") }

func BenchmarkFig7a_MemoryEfficiency(b *testing.B) {
	g := benchGrid(b)
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.Fig7a(g)
	}
	// Headline: PipeInfer Dolphin speed-per-GiB at 32 nodes.
	b.ReportMetric(fig.Series[2].Points[3].Y, "pipe32_tok/s/GiB")
}

func BenchmarkFig7b_ClusterA_TTFT(b *testing.B) {
	var fig harness.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = harness.Fig7b(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Series[2].Points[0].Y, "pipe_dolphin_ttft_s")
}

func BenchmarkFig7c_Constrained(b *testing.B) {
	var fig harness.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = harness.Fig7c(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	// PipeInfer Dolphin at 13 heterogeneous nodes.
	b.ReportMetric(fig.Series[2].Points[2].Y, "pipe13_tok/s")
}

func BenchmarkFig8_Ablations(b *testing.B) {
	var fig harness.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = harness.Fig8(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	full := fig.Series[0].Points[0].Y
	noCancel := fig.Series[1].Points[0].Y
	b.ReportMetric(full, "dolphin_full_tok/s")
	b.ReportMetric(full-noCancel, "cancel_gain_tok/s")
}

func BenchmarkFig9_GPUSpeeds(b *testing.B) {
	var fig harness.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = harness.Fig9(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Series[0].Points[0].Y, "pipe_senku_tok/s")
}

func BenchmarkFig10_PromptVariance(b *testing.B) {
	var fig harness.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = harness.Fig10(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Series[0].Points[0].Y, "pipe_prompt1_tok/s")
}

// --- Design-choice ablation benches (DESIGN.md §3) ---

func BenchmarkSweepMicroBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.SweepMicroBatch(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[0].Points[1].Y, "mb2_tok/s")
	}
}

func BenchmarkSweepCutoffReactivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.SweepCutoff(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[1].Points[1].Y, "ref_tok/s")
	}
}

func BenchmarkSweepSeqPartitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.SweepSeqPartitions(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[0].Points[3].Y, "seqs8_tok/s")
	}
}

func BenchmarkSweepAcceptance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.SweepAcceptance(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		// PipeInfer's worst-case floor relative to iterative at 10%
		// acceptance — the "near-zero slowdown" headline.
		b.ReportMetric(fig.Series[2].Points[0].Y/fig.Series[0].Points[0].Y, "pipe/iter@a0.1")
	}
}

// --- PR 10: goodput under overload ---

// BenchmarkServeOverloadGoodput measures the overload-control headline
// in exact virtual time: deadline-met goodput (tokens from sessions that
// met every configured deadline, per virtual second) at 1x/2x/4x
// oversubscription of a 4-slot simulated cluster. One deadline-free 1x
// wave calibrates the virtual service time; the shed arm then gives
// every request a TTFT SLO of 3/4 of that wave (the first wave hits it
// comfortably, anything still queued becomes provably unmeetable and is
// shed before compute), while the no-shed control carries only a
// completion deadline of 1.5 waves, which cannot be shed — excess waves
// serve anyway, miss, and dilute goodput. The gate: shed-arm goodput at
// 4x stays within 15% of 1x, while the control collapses.
func BenchmarkServeOverloadGoodput(b *testing.B) {
	const (
		slots  = 4
		maxNew = 24
	)
	base := pipeinfer.SimulateServeOptions{
		Cluster:     pipeinfer.ClusterC().Take(4),
		Pair:        pipeinfer.CPUPairs()[0],
		CFG:         pipeinfer.Config{MaxNew: maxNew},
		PromptLen:   12,
		Seed:        42,
		MaxSessions: slots,
	}
	calib := base
	calib.Sessions = slots
	cal, err := pipeinfer.SimulateServe(calib)
	if err != nil {
		b.Fatal(err)
	}
	wave := cal.Stats.Done
	ttftSLO := wave * 3 / 4
	complSLO := wave * 3 / 2

	type arm struct {
		goodput float64 // deadline-met tokens per virtual second
		hitRate float64 // over served (non-shed) sessions
		shed    int
		p50     time.Duration
		p99     time.Duration
	}
	run := func(mult int, shed bool) arm {
		opts := base
		opts.Sessions = slots * mult
		if shed {
			opts.SLOFor = func(int) (int, time.Duration, time.Duration) { return 0, ttftSLO, 0 }
		} else {
			opts.SLOFor = func(int) (int, time.Duration, time.Duration) { return 0, 0, complSLO }
		}
		out, err := pipeinfer.SimulateServe(opts)
		if err != nil {
			b.Fatal(err)
		}
		var a arm
		served, goodTok := 0, 0
		ttfts := make([]time.Duration, 0, opts.Sessions)
		for _, res := range out.Results {
			if res.Err != nil {
				a.shed++
				continue
			}
			served++
			if res.Stats.DeadlineHits == 1 {
				goodTok += res.Stats.Generated
			}
			ttfts = append(ttfts, res.Stats.TimeToFirst())
		}
		if served == 0 || out.Stats.Done <= 0 {
			b.Fatalf("degenerate arm: %d served, elapsed %v", served, out.Stats.Done)
		}
		sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
		a.goodput = float64(goodTok) / out.Stats.Done.Seconds()
		a.hitRate = float64(out.Stats.DeadlineHits) / float64(served)
		a.p50 = ttfts[len(ttfts)/2]
		a.p99 = ttfts[len(ttfts)*99/100]
		return a
	}

	var x1, x2, x4, ctl arm
	for i := 0; i < b.N; i++ {
		x1 = run(1, true)
		x2 = run(2, true)
		x4 = run(4, true)
		ctl = run(4, false)
	}
	if ratio := x4.goodput / x1.goodput; ratio < 0.85 || ratio > 1.15 {
		b.Fatalf("shed goodput at 4x is %.2fx of 1x, want within 15%%", ratio)
	}
	if ctl.goodput > 0.6*x1.goodput {
		b.Fatalf("no-shed control held %.0f of %.0f tok/s at 4x — overload should collapse it",
			ctl.goodput, x1.goodput)
	}
	b.ReportMetric(x1.goodput, "good_tok/s_1x")
	b.ReportMetric(x2.goodput, "good_tok/s_2x")
	b.ReportMetric(x4.goodput, "good_tok/s_4x")
	b.ReportMetric(ctl.goodput, "good_tok/s_4x_noshed")
	b.ReportMetric(x4.goodput/x1.goodput, "4x/1x")
	b.ReportMetric(x4.hitRate, "hit_rate_4x")
	b.ReportMetric(float64(x4.shed), "shed_4x")
	b.ReportMetric(x4.p50.Seconds(), "ttft_p50_s_4x")
	b.ReportMetric(x4.p99.Seconds(), "ttft_p99_s_4x")
}

// --- Scaling microbenches beyond the paper figures ---

// BenchmarkSimPipeline32Nodes measures simulator throughput itself: how
// fast the DES regenerates a 32-node PipeInfer generation.
func BenchmarkSimPipeline32Nodes(b *testing.B) {
	p := benchParams()
	cond := harness.Condition{
		Cluster:  cost.ClusterC().Take(32),
		Pair:     cost.PairDolphinTiny,
		Strategy: engine.StrategyPipeInfer,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Measure(cond, p); err != nil {
			b.Fatal(err)
		}
	}
}
