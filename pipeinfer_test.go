// Tests of the public facade: a downstream user's view of the library.
package pipeinfer_test

import (
	"testing"

	pipeinfer "github.com/pipeinfer/pipeinfer"
)

func TestFacadeSimulate(t *testing.T) {
	out, err := pipeinfer.Simulate(pipeinfer.SimulateOptions{
		Cluster:   pipeinfer.ClusterC().Take(4),
		Pair:      pipeinfer.CPUPairs()[0],
		Strategy:  pipeinfer.PipeInfer,
		CFG:       pipeinfer.Config{MaxNew: 24},
		PromptLen: 16,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Generated < 24 || out.Stats.Speed() <= 0 {
		t.Fatalf("degenerate outcome: %+v", out.Stats)
	}
}

func TestFacadeGenerate(t *testing.T) {
	tk, err := pipeinfer.NewTokenizer(pipeinfer.TinyModel().VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeinfer.TinyModel()
	cfg.NLayers = 4
	opts := pipeinfer.GenerateOptions{
		Nodes:    3,
		Strategy: pipeinfer.PipeInfer,
		CFG:      pipeinfer.Config{MaxNew: 10},
		ModelCfg: cfg,
		Seed:     3,
		Prompt:   tk.Encode("hello"),
	}
	out, err := pipeinfer.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pipeinfer.ReferenceGreedy(opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if out.Tokens[i] != ref[i] {
			t.Fatal("facade generation diverged from reference")
		}
	}
	if got := tk.Decode(out.Tokens); len(got) == 0 {
		t.Fatal("decode produced nothing")
	}
}

func TestFacadeStrategyNames(t *testing.T) {
	if pipeinfer.Iterative.String() != "iterative" ||
		pipeinfer.Speculative.String() != "speculative" ||
		pipeinfer.PipeInfer.String() != "pipeinfer" {
		t.Fatal("strategy constants wrong")
	}
}

func TestFacadePresets(t *testing.T) {
	if len(pipeinfer.CPUPairs()) != 6 || len(pipeinfer.GPUPairs()) != 7 {
		t.Fatal("pair presets wrong")
	}
	if len(pipeinfer.ClusterA().Nodes) != 8 || len(pipeinfer.ClusterB().Nodes) != 13 ||
		len(pipeinfer.ClusterC().Nodes) != 32 || len(pipeinfer.GPUCluster().Nodes) != 4 {
		t.Fatal("cluster presets wrong")
	}
	if pipeinfer.PaperParams().Reps != 10 {
		t.Fatal("paper params wrong")
	}
}

func TestFacadeTrace(t *testing.T) {
	tr := pipeinfer.NewTrace()
	_, err := pipeinfer.Simulate(pipeinfer.SimulateOptions{
		Cluster:   pipeinfer.ClusterC().Take(3),
		Pair:      pipeinfer.CPUPairs()[0],
		Strategy:  pipeinfer.PipeInfer,
		CFG:       pipeinfer.Config{MaxNew: 8},
		PromptLen: 8,
		Seed:      2,
		Trace:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
	if len(tr.EvalSpans()) == 0 {
		t.Fatal("no evaluation spans recorded")
	}
}

func TestFacadeServe(t *testing.T) {
	cfg := pipeinfer.TinyModel()
	cfg.NLayers = 4
	tk, err := pipeinfer.NewTokenizer(cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	prompts := []string{"hello", "world", "again"}
	reqs := make([]pipeinfer.ServeRequest, len(prompts))
	for i, p := range prompts {
		reqs[i] = pipeinfer.ServeRequest{Prompt: tk.Encode(p), MaxNew: 6}
	}
	out, err := pipeinfer.Serve(pipeinfer.ServeOptions{
		Nodes:    2,
		ModelCfg: cfg,
		Seed:     3,
		Requests: reqs,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		ref, err := pipeinfer.ReferenceGreedy(pipeinfer.GenerateOptions{
			ModelCfg: cfg, Seed: 3, Prompt: reqs[i].Prompt,
		}, 6)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref {
			if out.Results[i].Tokens[j] != ref[j] {
				t.Fatalf("served request %d diverged from its serial reference", i)
			}
		}
	}
}

func TestFacadeSimulateServe(t *testing.T) {
	out, err := pipeinfer.SimulateServe(pipeinfer.SimulateServeOptions{
		Cluster:   pipeinfer.ClusterC().Take(4),
		Pair:      pipeinfer.CPUPairs()[0],
		CFG:       pipeinfer.Config{MaxNew: 12},
		Sessions:  6,
		PromptLen: 8,
		Seed:      2,
		Speculate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 6 || out.Stats.Generated != 6*12 {
		t.Fatalf("degenerate serving outcome: %d results, %d generated",
			len(out.Results), out.Stats.Generated)
	}
	if out.Stats.Speed() <= 0 {
		t.Fatal("no aggregate speed")
	}
}
