// Command pipeinfer generates text with the real-compute backend: a tiny
// deterministic transformer pipelined across in-process stages, decoded
// with any of the three strategies. It prints the generated text plus the
// §V-A metrics, and verifies the output against the single-model greedy
// reference so every invocation doubles as a correctness check.
//
// Usage:
//
//	pipeinfer -strategy pipeinfer -nodes 4 -tokens 48 -prompt "Once upon a time"
//	pipeinfer -strategy speculative -noise 0.4        # poorly aligned draft
//	pipeinfer -compare                                # run all three strategies
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	pipeinfer "github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/engine"
	"github.com/pipeinfer/pipeinfer/internal/model"
	"github.com/pipeinfer/pipeinfer/internal/token"
)

func main() {
	var (
		strategyName = flag.String("strategy", "pipeinfer", "iterative | speculative | pipeinfer")
		nodes        = flag.Int("nodes", 4, "pipeline ranks (PipeInfer dedicates rank 0 to drafting)")
		tokens       = flag.Int("tokens", 48, "tokens to generate")
		promptText   = flag.String("prompt", "The quick brown fox", "prompt text")
		seed         = flag.Uint64("seed", 7, "model weight seed")
		noise        = flag.Float64("noise", 0.01, "draft perturbation (higher = lower acceptance)")
		layers       = flag.Int("layers", 8, "target model layers")
		compare      = flag.Bool("compare", false, "run all three strategies and compare")
	)
	flag.Parse()

	cfg := model.TinyConfig()
	cfg.NLayers = *layers
	tk, err := token.NewTokenizer(cfg.VocabSize)
	if err != nil {
		fatal(err)
	}
	prompt := tk.Encode(*promptText)

	strategies := map[string]pipeinfer.Strategy{
		"iterative":   pipeinfer.Iterative,
		"speculative": pipeinfer.Speculative,
		"pipeinfer":   pipeinfer.PipeInfer,
	}

	baseOpts := pipeinfer.GenerateOptions{
		Nodes:      *nodes,
		CFG:        engine.Config{MaxNew: *tokens},
		ModelCfg:   cfg,
		Seed:       *seed,
		DraftNoise: float32(*noise),
		Prompt:     prompt,
	}

	ref, err := pipeinfer.ReferenceGreedy(baseOpts, *tokens)
	if err != nil {
		fatal(err)
	}

	run := func(name string, s pipeinfer.Strategy) {
		opts := baseOpts
		opts.Strategy = s
		start := time.Now()
		out, err := pipeinfer.Generate(opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		elapsed := time.Since(start)
		match := len(out.Tokens) >= len(ref)
		for i := range ref {
			if i >= len(out.Tokens) || out.Tokens[i] != ref[i] {
				match = false
				break
			}
		}
		fmt.Printf("== %s (%d nodes) ==\n", name, *nodes)
		fmt.Printf("output: %q\n", tk.Decode(out.Tokens))
		fmt.Printf("speed: %.1f tok/s  TTFT: %v  ITL: %v  wall: %v\n",
			out.Stats.Speed(), out.Stats.TTFT().Round(time.Microsecond),
			out.Stats.ITL().Round(time.Microsecond), elapsed.Round(time.Millisecond))
		fmt.Printf("runs: %d launched, %d cancelled; draft acceptance: %.0f%%\n",
			out.Stats.RunsLaunched, out.Stats.RunsCancelled, out.Stats.AcceptanceRate()*100)
		if match {
			fmt.Println("correctness: output identical to single-model greedy reference")
		} else {
			fmt.Println("correctness: MISMATCH against greedy reference")
			os.Exit(1)
		}
		fmt.Println()
	}

	if *compare {
		for _, name := range []string{"iterative", "speculative", "pipeinfer"} {
			run(name, strategies[name])
		}
		return
	}
	s, ok := strategies[*strategyName]
	if !ok {
		fatal(fmt.Errorf("unknown strategy %q", *strategyName))
	}
	run(*strategyName, s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipeinfer:", err)
	os.Exit(1)
}
