// Command pipeinfer-trace runs one simulated generation with full
// timeline recording and prints the Fig 3-style pipeline timeline: run
// launches, per-stage evaluation spans, cancellations, acceptances — plus
// per-node utilisation, reproducing the utilisation analysis of §IV-B.
//
// Usage:
//
//	pipeinfer-trace -nodes 4 -tokens 12
//	pipeinfer-trace -strategy speculative -acceptance 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	pipeinfer "github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/cost"
	"github.com/pipeinfer/pipeinfer/internal/engine"
)

func main() {
	var (
		strategyName = flag.String("strategy", "pipeinfer", "iterative | speculative | pipeinfer")
		nodes        = flag.Int("nodes", 4, "cluster nodes")
		tokens       = flag.Int("tokens", 12, "tokens to generate")
		acceptance   = flag.Float64("acceptance", 0.79, "draft/target acceptance rate")
		promptLen    = flag.Int("prompt", 16, "prompt length")
	)
	flag.Parse()

	strategies := map[string]pipeinfer.Strategy{
		"iterative":   pipeinfer.Iterative,
		"speculative": pipeinfer.Speculative,
		"pipeinfer":   pipeinfer.PipeInfer,
	}
	s, ok := strategies[*strategyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "pipeinfer-trace: unknown strategy %q\n", *strategyName)
		os.Exit(1)
	}

	tr := pipeinfer.NewTrace()
	pair := cost.PairDolphinTiny
	pair.Acceptance = *acceptance
	out, err := pipeinfer.Simulate(pipeinfer.SimulateOptions{
		Cluster:   pipeinfer.ClusterC().Take(*nodes),
		Pair:      pair,
		Strategy:  s,
		CFG:       engine.Config{MaxNew: *tokens},
		PromptLen: *promptLen,
		Seed:      7,
		Trace:     tr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipeinfer-trace:", err)
		os.Exit(1)
	}

	fmt.Printf("strategy=%s nodes=%d tokens=%d acceptance=%.0f%%\n\n",
		*strategyName, *nodes, *tokens, *acceptance*100)
	fmt.Println(tr.Render())

	fmt.Printf("generated %d tokens at %.2f tok/s (TTFT %v, ITL %v)\n",
		out.Stats.Generated, out.Stats.Speed(), out.Stats.TTFT(), out.Stats.ITL())
	fmt.Printf("runs launched=%d cancelled=%d superfluous=%d\n\n",
		out.Stats.RunsLaunched, out.Stats.RunsCancelled, out.Stats.Superfluous)

	fmt.Println("per-node utilisation over the generation window:")
	for node, u := range tr.Utilisation(out.Stats.Done) {
		fmt.Printf("  %-8s %5.1f%%\n", node, u*100)
	}
}
