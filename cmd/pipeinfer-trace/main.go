// Command pipeinfer-trace runs one simulated generation with full
// timeline recording and prints the Fig 3-style pipeline timeline: run
// launches, per-stage evaluation spans, cancellations, acceptances — plus
// per-node utilisation, reproducing the utilisation analysis of §IV-B.
//
// With -flight it instead converts a binary flight-recorder dump (written
// automatically by pipeinfer-serve / pipeinfer-node on watchdog failure
// or breaker trip via -flight-dump) into Chrome trace-event JSON, ready
// for chrome://tracing or https://ui.perfetto.dev.
//
// Usage:
//
//	pipeinfer-trace -nodes 4 -tokens 12
//	pipeinfer-trace -strategy speculative -acceptance 0.5
//	pipeinfer-trace -flight flight.bin -o flight.json
package main

import (
	"flag"
	"fmt"
	"os"

	pipeinfer "github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/cost"
	"github.com/pipeinfer/pipeinfer/internal/engine"
	"github.com/pipeinfer/pipeinfer/internal/trace"
)

func main() {
	var (
		strategyName = flag.String("strategy", "pipeinfer", "iterative | speculative | pipeinfer")
		nodes        = flag.Int("nodes", 4, "cluster nodes")
		tokens       = flag.Int("tokens", 12, "tokens to generate")
		acceptance   = flag.Float64("acceptance", 0.79, "draft/target acceptance rate")
		promptLen    = flag.Int("prompt", 16, "prompt length")

		flightIn  = flag.String("flight", "", "convert this binary flight-recorder dump to Chrome trace-event JSON instead of simulating")
		flightOut = flag.String("o", "", "with -flight, write the JSON here (default stdout)")
	)
	flag.Parse()

	if *flightIn != "" {
		if err := convertFlight(*flightIn, *flightOut); err != nil {
			fmt.Fprintln(os.Stderr, "pipeinfer-trace:", err)
			os.Exit(1)
		}
		return
	}

	strategies := map[string]pipeinfer.Strategy{
		"iterative":   pipeinfer.Iterative,
		"speculative": pipeinfer.Speculative,
		"pipeinfer":   pipeinfer.PipeInfer,
	}
	s, ok := strategies[*strategyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "pipeinfer-trace: unknown strategy %q\n", *strategyName)
		os.Exit(1)
	}

	tr := pipeinfer.NewTrace()
	pair := cost.PairDolphinTiny
	pair.Acceptance = *acceptance
	out, err := pipeinfer.Simulate(pipeinfer.SimulateOptions{
		Cluster:   pipeinfer.ClusterC().Take(*nodes),
		Pair:      pair,
		Strategy:  s,
		CFG:       engine.Config{MaxNew: *tokens},
		PromptLen: *promptLen,
		Seed:      7,
		Trace:     tr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipeinfer-trace:", err)
		os.Exit(1)
	}

	fmt.Printf("strategy=%s nodes=%d tokens=%d acceptance=%.0f%%\n\n",
		*strategyName, *nodes, *tokens, *acceptance*100)
	fmt.Println(tr.Render())

	fmt.Printf("generated %d tokens at %.2f tok/s (TTFT %v, ITL %v)\n",
		out.Stats.Generated, out.Stats.Speed(), out.Stats.TTFT(), out.Stats.ITL())
	fmt.Printf("runs launched=%d cancelled=%d superfluous=%d\n\n",
		out.Stats.RunsLaunched, out.Stats.RunsCancelled, out.Stats.Superfluous)

	fmt.Println("per-node utilisation over the generation window:")
	for node, u := range tr.Utilisation(out.Stats.Done) {
		fmt.Printf("  %-8s %5.1f%%\n", node, u*100)
	}
}

// convertFlight reads a binary flight dump and writes it as Chrome
// trace-event JSON (stdout when outPath is empty). The dump summary —
// trigger reason, per-node event counts — goes to stderr so the JSON
// stream stays clean for piping.
func convertFlight(inPath, outPath string) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	dump, err := trace.ReadFlightDump(f)
	if err != nil {
		return fmt.Errorf("%s: %w", inPath, err)
	}

	fmt.Fprintf(os.Stderr, "flight dump: %q — %d events across %d rings\n",
		dump.Reason, dump.Len(), len(dump.Nodes))
	for _, n := range dump.Nodes {
		fmt.Fprintf(os.Stderr, "  %-8s %d events\n", n.Name, len(n.Events))
	}

	blob, err := dump.ChromeTrace()
	if err != nil {
		return err
	}
	if outPath == "" {
		_, err = os.Stdout.Write(append(blob, '\n'))
		return err
	}
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes) — open in chrome://tracing or ui.perfetto.dev\n",
		outPath, len(blob))
	return nil
}
