package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/pipeinfer/pipeinfer/internal/trace"
)

// TestConvertFlight round-trips a flight-recorder dump through the
// -flight conversion path: binary dump in, well-formed Chrome
// trace-event JSON out.
func TestConvertFlight(t *testing.T) {
	r := trace.NewRing(0)
	r.Record(1*time.Millisecond, trace.FlightLaunch, 1, 4)
	r.Record(2*time.Millisecond, trace.FlightEvalBeg, 1, 0)
	r.Record(3*time.Millisecond, trace.FlightEvalEnd, 1, 0)
	r.Record(4*time.Millisecond, trace.FlightFail, 1, 0)

	dir := t.TempDir()
	in := filepath.Join(dir, "flight.bin")
	out := filepath.Join(dir, "flight.json")

	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	dump := &trace.FlightDump{
		Reason: "test trigger",
		Nodes:  []trace.FlightNode{{Name: "head", Events: r.Snapshot()}},
	}
	if err := trace.WriteFlightDump(f, dump); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := convertFlight(in, out); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &parsed); err != nil {
		t.Fatalf("Chrome trace JSON invalid: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	spans := 0
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "B" || ev.Ph == "E" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("eval begin/end pair produced no B/E span events")
	}

	if err := convertFlight(filepath.Join(dir, "missing.bin"), out); err == nil {
		t.Error("missing input file did not error")
	}
}
