// Command pipeinfer-bench regenerates the paper's evaluation: every table
// and figure of §V and §VI, printed as aligned text series in the same
// order the paper reports them.
//
// Usage:
//
//	pipeinfer-bench                 # quick pass (reduced reps/tokens)
//	pipeinfer-bench -full           # paper scale: 10 reps, 512 tokens
//	pipeinfer-bench -figure 4a      # one figure only
//	pipeinfer-bench -reps 5 -tokens 256
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pipeinfer/pipeinfer/internal/harness"
)

func main() {
	var (
		full   = flag.Bool("full", false, "paper-scale parameters (10 reps, 512 tokens)")
		reps   = flag.Int("reps", 0, "repetitions per condition (overrides)")
		tokens = flag.Int("tokens", 0, "generated tokens per run (overrides)")
		prompt = flag.Int("prompt", 0, "prompt length in tokens (overrides)")
		figure = flag.String("figure", "all", "figure to regenerate: all, tables, 4a..4c, 5a..5c, 6a..6c, 7a, 7b, 7c, 8, 9, 10")
	)
	flag.Parse()

	p := harness.Params{Reps: 2, MaxNew: 160, PromptLen: 128, BaseSeed: 42}
	if *full {
		p = harness.Paper()
	}
	if *reps > 0 {
		p.Reps = *reps
	}
	if *tokens > 0 {
		p.MaxNew = *tokens
	}
	if *prompt > 0 {
		p.PromptLen = *prompt
	}

	want := func(id string) bool {
		return *figure == "all" || strings.EqualFold(*figure, id)
	}

	if *figure == "all" || *figure == "tables" {
		fmt.Println(harness.TableI())
		fmt.Println(harness.TableII())
		fmt.Println(harness.TableIII())
		fmt.Println(harness.TableIV())
	}

	needGrid := false
	for _, id := range []string{"4a", "4b", "4c", "5a", "5b", "5c", "6a", "6b", "6c", "7a"} {
		if want(id) {
			needGrid = true
		}
	}
	var grid *harness.Grid
	if needGrid {
		fmt.Fprintf(os.Stderr, "running cluster C grid (%d reps x %d tokens)...\n", p.Reps, p.MaxNew)
		g, err := harness.RunCPUGrid(p)
		if err != nil {
			fatal(err)
		}
		grid = g
	}

	for sub := 0; sub < 3; sub++ {
		if want(fmt.Sprintf("4%c", 'a'+sub)) {
			fmt.Println(harness.Fig4(grid, sub).Render())
		}
	}
	for sub := 0; sub < 3; sub++ {
		if want(fmt.Sprintf("5%c", 'a'+sub)) {
			fmt.Println(harness.Fig5(grid, sub).Render())
		}
	}
	for sub := 0; sub < 3; sub++ {
		if want(fmt.Sprintf("6%c", 'a'+sub)) {
			fmt.Println(harness.Fig6(grid, sub).Render())
		}
	}
	if want("7a") {
		fmt.Println(harness.Fig7a(grid).Render())
	}
	if want("7b") {
		render(harness.Fig7b(p))
	}
	if want("7c") {
		render(harness.Fig7c(p))
	}
	if want("8") {
		render(harness.Fig8(p))
	}
	if want("9") {
		render(harness.Fig9(p))
	}
	if want("10") {
		render(harness.Fig10(p))
	}
	if *figure == "all" || *figure == "sweeps" {
		render(harness.SweepMicroBatch(p))
		render(harness.SweepCutoff(p))
		render(harness.SweepSeqPartitions(p))
		render(harness.SweepAcceptance(p))
	}
}

func render(f harness.Figure, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Println(f.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipeinfer-bench:", err)
	os.Exit(1)
}
