// Command pipeinfer-serve runs the multi-request serving layer: N
// concurrent prompts multiplexed over one shared pipeline with continuous
// session scheduling, streaming each session's tokens as they are
// accepted. Every session's output is verified against the single-model
// greedy reference, so each invocation doubles as a serving correctness
// check.
//
// Usage:
//
//	pipeinfer-serve -nodes 3 -sessions 4 -tokens 32        # real backend
//	pipeinfer-serve -speculate -slots 4                    # per-session speculation
//	pipeinfer-serve -sim -sessions 16 -nodes 8             # 70B-scale simulation
//	pipeinfer-serve -sessions 16 -slots 16 -kv-cells 128 -kv-page 8
//	                                                       # oversubscribed KV: eviction +
//	                                                       # preemption + readmission engage
//	pipeinfer-serve -sessions 16 -slots 16 -batch 4        # cross-session batching: up to 4
//	                                                       # sessions' steps coalesce into one
//	                                                       # multi-row pipeline run
//	pipeinfer-serve -batch 8 -batch-window 2               # hold a partial batch up to 2
//	                                                       # scheduler steps while the
//	                                                       # pipeline is busy
//	pipeinfer-serve -batch 8 -prefill-chunk 32             # chunked cross-session prefill:
//	                                                       # prompts split into 32-token chunks
//	                                                       # that ride in the same runs as
//	                                                       # decode rows, shortest prompt first
//	pipeinfer-serve -batch auto                            # adaptive batch width: the scheduler
//	                                                       # picks each step's width from load,
//	                                                       # occupancy and measured run overhead
//	pipeinfer-serve -sessions 16 -slots 4 -kv-cells 512 -kv-page 8 \
//	                -prompt "You are a helpful assistant. Answer briefly."
//	                                                       # shared-prefix reuse: sessions share
//	                                                       # the long system prompt; recycled
//	                                                       # slots map the published prefix
//	                                                       # read-only instead of recomputing it
//	                                                       # (-prefix-cache=false disables)
//	pipeinfer-serve -sessions 16 -slots 4 -ttft-slo 2s \
//	                -deadline 30s -max-queue 8             # overload control: requests carry a
//	                                                       # TTFT SLO and completion deadline
//	                                                       # (budgets from serve start); queued
//	                                                       # requests whose TTFT budget is
//	                                                       # provably blown are shed before any
//	                                                       # compute, submissions past the queue
//	                                                       # bound are refused with a
//	                                                       # distinguishable overload error, and
//	                                                       # the brown-out ladder drops
//	                                                       # speculation then narrows prefill
//	                                                       # before any mandatory work suffers
//	pipeinfer-serve -metrics-addr :9090                    # live observability: /metrics
//	                                                       # (Prometheus), /healthz, /readyz and
//	                                                       # /debug/pprof while serving
//	pipeinfer-serve -run-timeout 50ms -flight-dump f.bin   # arm the always-on flight recorder's
//	                                                       # automatic dump: on watchdog failure
//	                                                       # or breaker trip the event rings are
//	                                                       # written to f.bin (convert to Chrome
//	                                                       # trace JSON with pipeinfer-trace
//	                                                       # -flight f.bin)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	pipeinfer "github.com/pipeinfer/pipeinfer"
	"github.com/pipeinfer/pipeinfer/internal/engine"
	"github.com/pipeinfer/pipeinfer/internal/model"
	"github.com/pipeinfer/pipeinfer/internal/telemetry"
	"github.com/pipeinfer/pipeinfer/internal/token"
	"github.com/pipeinfer/pipeinfer/internal/trace"
)

// parseBatch interprets the -batch flag: "auto" selects the adaptive
// width controller (optionally capped, "auto:8"), an integer sets a
// static width, 0/1 disables batching.
func parseBatch(v string) (width int, auto bool, err error) {
	if v == "" || v == "0" {
		return 0, false, nil
	}
	if v == "auto" {
		return 0, true, nil
	}
	if rest, ok := strings.CutPrefix(v, "auto:"); ok {
		w, err := strconv.Atoi(rest)
		if err != nil || w <= 1 {
			// Caps <= 1 would silently fall back to the slot-count default
			// (serve.Config treats them as "no cap given"); reject instead.
			return 0, false, fmt.Errorf("bad -batch cap %q (want an integer >= 2)", rest)
		}
		return w, true, nil
	}
	w, err := strconv.Atoi(v)
	if err != nil {
		return 0, false, fmt.Errorf("bad -batch %q (want an integer or \"auto\")", v)
	}
	return w, false, nil
}

func main() {
	var (
		nodes     = flag.Int("nodes", 3, "pipeline ranks")
		sessions  = flag.Int("sessions", 4, "concurrent generation requests")
		slots     = flag.Int("slots", 0, "concurrent session slots (0 = min(4, sessions))")
		tokens    = flag.Int("tokens", 32, "tokens to generate per request")
		prompt    = flag.String("prompt", "Request", "base prompt; each session appends its index")
		seed      = flag.Uint64("seed", 7, "model weight seed")
		layers    = flag.Int("layers", 8, "target model layers")
		speculate = flag.Bool("speculate", false, "dedicated drafting head + per-session speculation")
		noise     = flag.Float64("noise", 0.01, "draft perturbation (with -speculate)")
		stream    = flag.Bool("stream", true, "print tokens as sessions accept them")
		sim       = flag.Bool("sim", false, "serve on the simulated 70B-scale cluster instead")
		kvCells   = flag.Int("kv-cells", 0, "per-stage KV capacity in cells (0 = fully provisioned; smaller values oversubscribe and engage eviction/preemption)")
		kvPage    = flag.Int("kv-page", 0, "KV page size in cells (0 = default 16)")
		prefix    = flag.Bool("prefix-cache", true, "shared-prefix reuse: publish completed prompt prefixes in a block-hash trie and map them read-only into later sessions sharing them, skipping recompute (needs -kv-cells > 0; ignored otherwise)")
		sharedLen = flag.Int("shared-prompt", 0, "prepend this many common system-prompt tokens to every session (sim mode; pairs with -prefix-cache to demonstrate shared-prefix reuse)")
		batchStr  = flag.String("batch", "0", "cross-session batching: coalesce up to this many sessions' steps into one multi-row pipeline run (0/1 = off; \"auto\" = adaptive width, \"auto:N\" = adaptive capped at N)")
		batchWin  = flag.Int("batch-window", 0, "scheduler steps a partial batch may wait for more ready sessions while the pipeline is busy (0 = launch immediately)")
		chunk     = flag.Int("prefill-chunk", 0, "chunked cross-session prefill: per-run prompt token budget; prompts split into chunks that batch across sessions and ride with decode rows (0 = whole-prompt prefills; needs -batch)")
		runTO     = flag.Duration("run-timeout", 0, "run watchdog floor: a run without a result past its deadline fails and its sessions recover by evict + prefix recompute (0 = off)")
		priority  = flag.Int("priority", 0, "service class for every request: higher priorities rank as if their deadline were earlier in the admission queue (aging prevents starvation of lower classes)")
		ttftSLO   = flag.Duration("ttft-slo", 0, "time-to-first-token budget from serve start; a queued request whose budget is provably blown is shed before any compute is spent on it (0 = no TTFT SLO)")
		deadline  = flag.Duration("deadline", 0, "completion budget from serve start; served requests score a deadline hit or miss (0 = no deadline)")
		maxQueue  = flag.Int("max-queue", 0, "admission queue bound: submissions past it are refused with a distinguishable overload error instead of waiting; also anchors the brown-out degradation ladder (0 = unbounded)")
		mAddr     = flag.String("metrics-addr", "", "serve live observability HTTP on this address (e.g. :9090): /metrics Prometheus exposition with streaming p50/p90/p99 latency summaries and per-stage bubble fractions, /healthz + /readyz health, /debug/pprof profiling (empty = off)")
		flightOut = flag.String("flight-dump", "", "arm automatic flight-recorder dumps: on watchdog failure or breaker trip the per-rank event rings are written to this file (binary; convert with pipeinfer-trace -flight; empty = off)")
		_         = flag.Duration("heartbeat", time.Second, "link keepalive interval (TCP transport only; the in-process mesh here has no links to keep alive — see pipeinfer-node)")
		_         = flag.Duration("reconnect-backoff", 50*time.Millisecond, "initial redial backoff (TCP transport only — see pipeinfer-node)")
	)
	flag.Parse()

	batchSz, autoBatch, err := parseBatch(*batchStr)
	if err != nil {
		fatal(err)
	}

	reg := newRegistry(*mAddr, *flightOut)

	slo := sloOptions{priority: *priority, ttftSLO: *ttftSLO, deadline: *deadline, maxQueue: *maxQueue}

	if *sim {
		simServe(*nodes, *sessions, *slots, *tokens, *seed, *speculate, *kvCells, *kvPage, *prefix, *sharedLen, batchSz, *batchWin, *chunk, autoBatch, *runTO, slo, reg)
		return
	}

	cfg := model.TinyConfig()
	cfg.NLayers = *layers
	tk, err := token.NewTokenizer(cfg.VocabSize)
	if err != nil {
		fatal(err)
	}
	reqs := make([]pipeinfer.ServeRequest, *sessions)
	for i := range reqs {
		reqs[i] = pipeinfer.ServeRequest{
			Prompt: tk.Encode(fmt.Sprintf("%s %d", *prompt, i)),
			MaxNew: *tokens,
			// SLO budgets are measured from serve start; the endpoint
			// clock's epoch is the cluster's creation inside Serve, so the
			// relative budget is the absolute deadline.
			Priority:     slo.priority,
			TTFTDeadline: slo.ttftSLO,
			Deadline:     slo.deadline,
		}
	}

	opts := pipeinfer.ServeOptions{
		Nodes:        *nodes,
		CFG:          engine.Config{MaxNew: *tokens},
		ModelCfg:     cfg,
		Seed:         *seed,
		Speculate:    *speculate,
		DraftNoise:   float32(*noise),
		MaxSessions:  *slots,
		KVCells:      *kvCells,
		KVPageSize:   *kvPage,
		PrefixCache:  *prefix,
		MaxBatch:     batchSz,
		BatchWindow:  *batchWin,
		PrefillChunk: *chunk,
		AutoBatch:    autoBatch,
		RunTimeout:   *runTO,
		MaxQueue:     slo.maxQueue,
		Obs:          reg,
		Requests:     reqs,
	}
	if *stream {
		opts.OnToken = func(req int, tok token.Token) {
			fmt.Printf("[s%d] %s\n", req, tk.Decode([]token.Token{tok}))
		}
	}
	// Memory-pressure and fault events are part of the serving story: show them.
	opts.OnPreempt = func(req int) { fmt.Printf("[s%d] -- preempted: KV evicted, request parked --\n", req) }
	opts.OnReadmit = func(req int) { fmt.Printf("[s%d] -- readmitted: recomputing prefix --\n", req) }
	opts.OnRecover = func(req int) { fmt.Printf("[s%d] -- run failed: recovering by prefix recompute --\n", req) }

	start := time.Now()
	out, err := pipeinfer.Serve(opts)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("== served %d requests over %d nodes (speculate=%v) ==\n", *sessions, *nodes, *speculate)
	mismatch := false
	for i, res := range out.Results {
		if res.Err != nil {
			// Shed and refused requests settle with an error Result, never
			// silently — and never count against correctness.
			fmt.Printf("session %d: not served (%v)\n", i, res.Err)
			continue
		}
		ref, err := pipeinfer.ReferenceGreedy(pipeinfer.GenerateOptions{
			ModelCfg: cfg, Seed: *seed, Prompt: reqs[i].Prompt,
		}, *tokens)
		if err != nil {
			fatal(err)
		}
		ok := len(res.Tokens) == len(ref)
		for j := 0; ok && j < len(ref); j++ {
			ok = res.Tokens[j] == ref[j]
		}
		if !ok {
			mismatch = true
		}
		fmt.Printf("session %d: %q (%d tok, verified=%v)\n", i, tk.Decode(res.Tokens), len(res.Tokens), ok)
	}
	total := 0
	for _, r := range out.Results {
		total += r.Stats.Generated
	}
	fmt.Printf("aggregate: %d tokens in %v (%.1f tok/s); runs: %d launched, %d cancelled\n",
		total, wall.Round(time.Millisecond), float64(total)/wall.Seconds(),
		out.Stats.RunsLaunched, out.Stats.RunsCancelled)
	if len(out.Results) > 0 {
		var ttftSum time.Duration
		for _, r := range out.Results {
			ttftSum += r.Stats.TimeToFirst()
		}
		fmt.Printf("latency: mean TTFT %v across %d sessions\n",
			(ttftSum / time.Duration(len(out.Results))).Round(time.Millisecond), len(out.Results))
	}
	fmt.Printf("memory pressure: %d spec drops, %d preemptions, %d readmissions\n",
		out.Stats.SpecDrops, out.Stats.Preemptions, out.Stats.Readmissions)
	if *prefix && *kvCells > 0 {
		promptTokens := 0
		for _, r := range reqs {
			promptTokens += len(r.Prompt)
		}
		fmt.Printf("prefix cache: %d hits reused %d prompt tokens (%.0f%% of prompt work skipped)\n",
			out.Stats.PrefixHits, out.Stats.PrefixHitTokens,
			100*float64(out.Stats.PrefixHitTokens)/float64(max(promptTokens, 1)))
	}
	if out.Stats.BatchedRuns > 0 {
		fmt.Printf("batching: %d multi-session runs (%d carrying prefill chunks), mean width %.1f, %d rows masked out in flight\n",
			out.Stats.BatchedRuns, out.Stats.PrefillBatchedRuns, out.Stats.MeanBatch(), out.Stats.RowCancels)
	}
	if *runTO > 0 || out.Stats.RunTimeouts > 0 {
		fmt.Printf("fault tolerance: %d run timeouts, %d recoveries, %d reconnects, %d breaker trips\n",
			out.Stats.RunTimeouts, out.Stats.Recoveries, out.Stats.Reconnects, out.Stats.BreakerTrips)
	}
	printOverload(out.Stats, slo)
	printTelemetry(reg)
	if mismatch {
		fmt.Println("correctness: MISMATCH against greedy reference")
		os.Exit(1)
	}
	fmt.Println("correctness: every session identical to its greedy reference")
}

// newRegistry builds the telemetry registry when -metrics-addr or
// -flight-dump asks for one (nil otherwise: observation hooks no-op).
func newRegistry(addr, flightPath string) *telemetry.Registry {
	if addr == "" && flightPath == "" {
		return nil
	}
	reg := telemetry.New()
	if flightPath != "" {
		reg.SetDumpPath(flightPath)
	}
	if addr != "" {
		bound, _, err := reg.Serve(addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("telemetry: http://%s/metrics (also /healthz, /readyz, /debug/pprof)\n", bound)
	}
	return reg
}

// printTelemetry summarises the registry's streaming percentiles and
// per-stage pipeline utilisation after the run.
func printTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	fmt.Printf("telemetry: TTFT p50 %v p99 %v; ITL p50 %v p99 %v over %d/%d samples\n",
		reg.TTFT.QuantileDuration(0.5).Round(time.Microsecond),
		reg.TTFT.QuantileDuration(0.99).Round(time.Microsecond),
		reg.ITL.QuantileDuration(0.5).Round(time.Microsecond),
		reg.ITL.QuantileDuration(0.99).Round(time.Microsecond),
		reg.TTFT.Count(), reg.ITL.Count())
	now := reg.Now()
	reg.EachStage(func(name string, m *trace.StageMeter) {
		fmt.Printf("telemetry: stage %s busy %.0f%% bubble %.0f%% over %d evals\n",
			name, m.BusyFraction(now)*100, m.BubbleFraction(now)*100, m.Evals())
	})
	if reg.Dumps() > 0 {
		fmt.Printf("telemetry: %d flight dump(s) taken\n", reg.Dumps())
	}
}

// sloOptions bundles the overload-control flags: one service class plus
// TTFT/completion budgets (from serve start) applied to every request,
// and the admission queue bound.
type sloOptions struct {
	priority          int
	ttftSLO, deadline time.Duration
	maxQueue          int
}

// printOverload summarises the overload-control outcome when any of it
// engaged or was configured: sheds, admission refusals, and the deadline
// hit-rate over requests that carried deadlines.
func printOverload(s engine.Stats, slo sloOptions) {
	if slo.maxQueue == 0 && slo.ttftSLO == 0 && slo.deadline == 0 && s.Sheds == 0 && s.Overloads == 0 {
		return
	}
	fmt.Printf("overload control: %d shed on TTFT deadline, %d refused at admission\n", s.Sheds, s.Overloads)
	if scored := s.DeadlineHits + s.DeadlineMisses; scored > 0 {
		fmt.Printf("deadlines: %d/%d served requests met every deadline (%.0f%% hit-rate)\n",
			s.DeadlineHits, scored, 100*float64(s.DeadlineHits)/float64(scored))
	}
}

// simServe serves on the discrete-event simulator at paper scale and
// reports virtual-time throughput.
func simServe(nodes, sessions, slots, tokens int, seed uint64, speculate bool, kvCells, kvPage int, prefix bool, sharedLen, batchSz, batchWin, chunk int, autoBatch bool, runTO time.Duration, slo sloOptions, reg *telemetry.Registry) {
	simOpts := pipeinfer.SimulateServeOptions{
		Cluster:         pipeinfer.ClusterC().Take(nodes),
		Pair:            pipeinfer.CPUPairs()[0],
		CFG:             engine.Config{MaxNew: tokens},
		Sessions:        sessions,
		PromptLen:       64,
		SharedPromptLen: sharedLen,
		Seed:            seed,
		Speculate:       speculate,
		MaxSessions:     slots,
		KVCells:         kvCells,
		KVPageSize:      kvPage,
		PrefixCache:     prefix,
		MaxBatch:        batchSz,
		BatchWindow:     batchWin,
		PrefillChunk:    chunk,
		AutoBatch:       autoBatch,
		RunTimeout:      runTO,
		MaxQueue:        slo.maxQueue,
		Obs:             reg,
	}
	if slo.priority != 0 || slo.ttftSLO > 0 || slo.deadline > 0 {
		// Budgets from serve start are absolute deadlines on the
		// simulation's virtual clock, whose epoch is t=0.
		simOpts.SLOFor = func(int) (int, time.Duration, time.Duration) {
			return slo.priority, slo.ttftSLO, slo.deadline
		}
	}
	out, err := pipeinfer.SimulateServe(simOpts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("== simulated serving: %d sessions over %d nodes (speculate=%v) ==\n",
		sessions, nodes, speculate)
	var ttftSum, ttftMean time.Duration
	served := 0
	for i, res := range out.Results {
		if res.Err != nil {
			fmt.Printf("session %d: not served (%v)\n", i, res.Err)
			continue
		}
		served++
		ttftSum += res.Stats.TimeToFirst()
		fmt.Printf("session %d: %d tokens, TTFT %v, speed %.1f tok/s\n",
			i, res.Stats.Generated, res.Stats.TimeToFirst().Round(time.Millisecond), res.Stats.Speed())
	}
	if served > 0 {
		ttftMean = ttftSum / time.Duration(served)
	}
	fmt.Printf("aggregate: %d tokens in %v virtual (%.1f tok/s); acceptance %.0f%%; mean TTFT %v\n",
		out.Stats.Generated, out.Stats.Done.Round(time.Millisecond),
		out.Stats.Speed(), out.Stats.AcceptanceRate()*100,
		ttftMean.Round(time.Millisecond))
	fmt.Printf("memory pressure: %d spec drops, %d preemptions, %d readmissions\n",
		out.Stats.SpecDrops, out.Stats.Preemptions, out.Stats.Readmissions)
	if prefix && kvCells > 0 {
		promptTokens := sessions * (64 + sharedLen)
		fmt.Printf("prefix cache: %d hits reused %d prompt tokens (%.0f%% of prompt work skipped)\n",
			out.Stats.PrefixHits, out.Stats.PrefixHitTokens,
			100*float64(out.Stats.PrefixHitTokens)/float64(max(promptTokens, 1)))
	}
	if out.Stats.BatchedRuns > 0 {
		fmt.Printf("batching: %d multi-session runs (%d carrying prefill chunks), mean width %.1f, %d rows masked out in flight\n",
			out.Stats.BatchedRuns, out.Stats.PrefillBatchedRuns, out.Stats.MeanBatch(), out.Stats.RowCancels)
	}
	if runTO > 0 || out.Stats.RunTimeouts > 0 {
		fmt.Printf("fault tolerance: %d run timeouts, %d recoveries, %d reconnects, %d breaker trips\n",
			out.Stats.RunTimeouts, out.Stats.Recoveries, out.Stats.Reconnects, out.Stats.BreakerTrips)
	}
	printOverload(out.Stats, slo)
	printTelemetry(reg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipeinfer-serve:", err)
	os.Exit(1)
}
