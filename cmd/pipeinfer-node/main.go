// Command pipeinfer-node runs one rank of a genuinely distributed
// PipeInfer cluster over TCP. Start one process per rank with identical
// flags (only -rank differs); every rank derives identical model weights
// from the shared seed, so no weight files need distributing. Rank 0 is
// the head: it drives generation and prints the result.
//
// Example (three shells, or backgrounded):
//
//	pipeinfer-node -rank 0 -peers 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072 &
//	pipeinfer-node -rank 1 -peers 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072 &
//	pipeinfer-node -rank 2 -peers 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072
//
// With -serve N the cluster runs the multi-request serving layer instead
// of a single generation, and the fault-tolerance machinery is available
// end to end: -heartbeat keeps links monitored and self-healing (dead
// connections redial with exponential backoff and jitter), -run-timeout
// arms the head's run watchdog so a stalled or lost run recovers its
// sessions by eviction + prefix-recompute readmission:
//
//	pipeinfer-node -rank 0 -peers ... -serve 8 -run-timeout 2s -heartbeat 500ms
//
// With -serve and -kv-cells the paged KV protocol runs over the wire,
// including shared-prefix reuse: completed prompt prefixes are published
// in a block-hash trie and mapped read-only into later sessions that
// share them, so a common system prompt is computed once per cluster
// (-prefix-cache=false disables):
//
//	pipeinfer-node -rank 0 -peers ... -serve 8 -kv-cells 512 -kv-page 8
//
// Every rank can expose live observability with -metrics-addr: /metrics
// (Prometheus exposition — this rank's stage bubble fraction, link
// traffic and, on rank 0, the serving latency percentiles), /healthz,
// /readyz and /debug/pprof. -flight-dump arms automatic flight-recorder
// dumps on watchdog failure or breaker trip (rank 0, serving mode):
//
//	pipeinfer-node -rank 0 -peers ... -serve 8 -run-timeout 2s \
//	    -metrics-addr :9090 -flight-dump flight.bin
//
// Ctrl-C during mesh establishment aborts the dial loop immediately
// instead of blocking until -timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/pipeinfer/pipeinfer/internal/backend/realbk"
	"github.com/pipeinfer/pipeinfer/internal/comm/tcpcomm"
	"github.com/pipeinfer/pipeinfer/internal/engine"
	"github.com/pipeinfer/pipeinfer/internal/model"
	"github.com/pipeinfer/pipeinfer/internal/serve"
	"github.com/pipeinfer/pipeinfer/internal/telemetry"
	"github.com/pipeinfer/pipeinfer/internal/token"
)

func main() {
	var (
		rank         = flag.Int("rank", 0, "this process's rank")
		peers        = flag.String("peers", "", "comma-separated host:port per rank, in rank order")
		strategyName = flag.String("strategy", "pipeinfer", "iterative | speculative | pipeinfer")
		tokens       = flag.Int("tokens", 32, "tokens to generate")
		promptText   = flag.String("prompt", "Distributed inference over TCP", "prompt text")
		seed         = flag.Uint64("seed", 7, "shared model weight seed (must match on all ranks)")
		noise        = flag.Float64("noise", 0.01, "draft perturbation")
		layers       = flag.Int("layers", 8, "target model layers")
		timeout      = flag.Duration("timeout", 30*time.Second, "mesh establishment timeout")

		sessions   = flag.Int("serve", 0, "serve this many concurrent requests instead of one generation (must match on all ranks)")
		kvCells    = flag.Int("kv-cells", 0, "per-stage KV capacity in cells (0 = fully provisioned; needs -serve; must match on all ranks)")
		kvPage     = flag.Int("kv-page", 0, "KV page size in cells (0 = default 16; must match on all ranks)")
		prefix     = flag.Bool("prefix-cache", true, "shared-prefix reuse: publish completed prompt prefixes and map them read-only into later sessions sharing them (needs -serve and -kv-cells > 0; must match on all ranks)")
		runTimeout = flag.Duration("run-timeout", 0, "run watchdog floor: a run without a result past its deadline fails and its sessions recover by evict + prefix recompute (0 = off; needs -serve; rank 0 only)")
		priority   = flag.Int("priority", 0, "service class for every request: higher priorities rank earlier in the admission queue (needs -serve; rank 0 only)")
		ttftSLO    = flag.Duration("ttft-slo", 0, "time-to-first-token budget from serve start; queued requests whose budget is provably blown are shed before any compute (0 = off; needs -serve; rank 0 only)")
		deadline   = flag.Duration("deadline", 0, "completion budget from serve start; served requests score a deadline hit or miss (0 = off; needs -serve; rank 0 only)")
		maxQueue   = flag.Int("max-queue", 0, "admission queue bound: submissions past it are refused with an overload error; also anchors the brown-out ladder (0 = unbounded; needs -serve; rank 0 only)")
		heartbeat  = flag.Duration("heartbeat", time.Second, "link keepalive interval; silent links are torn down and redialed (0 = off)")
		backoff    = flag.Duration("reconnect-backoff", 50*time.Millisecond, "initial redial backoff, doubled with jitter up to 2s")
		reconnect  = flag.Duration("reconnect-timeout", 10*time.Second, "per-link reconnection budget after a failure (0 = broken links stay down)")

		mAddr     = flag.String("metrics-addr", "", "serve this rank's observability HTTP here (e.g. :9090): /metrics Prometheus exposition, /healthz + /readyz, /debug/pprof (empty = off)")
		flightOut = flag.String("flight-dump", "", "write an automatic flight-recorder dump to this file on watchdog failure or breaker trip (rank 0 with -serve; convert with pipeinfer-trace -flight; empty = off)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 2 || *peers == "" {
		fatal(fmt.Errorf("need -peers with at least two host:port entries"))
	}

	strategies := map[string]engine.Strategy{
		"iterative":   engine.StrategyIterative,
		"speculative": engine.StrategySpeculative,
		"pipeinfer":   engine.StrategyPipeInfer,
	}
	strategy, ok := strategies[*strategyName]
	if !ok {
		fatal(fmt.Errorf("unknown strategy %q", *strategyName))
	}

	cfg := model.TinyConfig()
	cfg.NLayers = *layers
	tk, err := token.NewTokenizer(cfg.VocabSize)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C aborts mesh establishment (and reconnection waits) instead of
	// sleeping out the dial timeout.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ep, err := tcpcomm.Dial(tcpcomm.Config{
		Rank: *rank, Addrs: addrs, DialTimeout: *timeout,
		Heartbeat:        *heartbeat,
		ReconnectBackoff: *backoff,
		ReconnectTimeout: *reconnect,
		Context:          ctx,
	})
	if err != nil {
		fatal(err)
	}
	defer ep.Close()
	fmt.Fprintf(os.Stderr, "rank %d/%d connected\n", *rank, len(addrs))

	var reg *telemetry.Registry
	if *mAddr != "" || *flightOut != "" {
		reg = telemetry.New()
		if *flightOut != "" {
			reg.SetDumpPath(*flightOut)
		}
		if *mAddr != "" {
			bound, _, err := reg.Serve(*mAddr)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "rank %d telemetry: http://%s/metrics\n", *rank, bound)
		}
	}

	if *sessions > 0 {
		slo := sloOptions{priority: *priority, ttftSLO: *ttftSLO, deadline: *deadline, maxQueue: *maxQueue}
		serveCluster(ep, addrs, tk, cfg, strategy, *sessions, *tokens, *kvCells, *kvPage, *prefix, *promptText, *seed, *noise, *runTimeout, slo, reg)
		return
	}

	out, err := realbk.RunRank(ep, realbk.Options{
		Nodes:      len(addrs),
		Strategy:   strategy,
		CFG:        engine.Config{MaxNew: *tokens},
		ModelCfg:   cfg,
		Seed:       *seed,
		DraftNoise: float32(*noise),
		Prompt:     tk.Encode(*promptText),
	})
	if err != nil {
		fatal(err)
	}
	if *rank == 0 {
		fmt.Printf("output: %q\n", tk.Decode(out.Tokens))
		fmt.Printf("speed: %.1f tok/s  TTFT: %v  ITL: %v  acceptance: %.0f%%  cancelled: %d/%d runs\n",
			out.Stats.Speed(), out.Stats.TTFT().Round(time.Microsecond),
			out.Stats.ITL().Round(time.Microsecond), out.Stats.AcceptanceRate()*100,
			out.Stats.RunsCancelled, out.Stats.RunsLaunched)
		if n := ep.Reconnects(); n > 0 {
			fmt.Printf("fault tolerance: %d links re-established\n", n)
		}
	} else {
		fmt.Fprintf(os.Stderr, "rank %d done\n", *rank)
	}
}

// sloOptions bundles the overload-control flags: one service class plus
// TTFT/completion budgets (from serve start) applied to every request,
// and the admission queue bound.
type sloOptions struct {
	priority          int
	ttftSLO, deadline time.Duration
	maxQueue          int
}

// serveCluster runs one rank of a distributed serving run: the shared
// pipeline multiplexes every request, with the watchdog and session
// recovery armed when runTimeout > 0 and overload control armed by the
// SLO flags.
func serveCluster(ep *tcpcomm.Endpoint, addrs []string, tk *token.Tokenizer, cfg model.Config,
	strategy engine.Strategy, sessions, tokens, kvCells, kvPage int, prefix bool,
	promptText string, seed uint64, noise float64, runTimeout time.Duration, slo sloOptions, reg *telemetry.Registry) {
	if strategy == engine.StrategySpeculative {
		fatal(fmt.Errorf("-serve supports iterative and pipeinfer strategies"))
	}
	reqs := make([]serve.Request, sessions)
	for i := range reqs {
		reqs[i] = serve.Request{
			Prompt: tk.Encode(fmt.Sprintf("%s %d", promptText, i)),
			MaxNew: tokens,
			// Budgets from serve start are absolute deadlines on the TCP
			// endpoint's clock, whose epoch is mesh establishment.
			Priority:     slo.priority,
			TTFTDeadline: slo.ttftSLO,
			Deadline:     slo.deadline,
		}
	}
	rank := ep.Rank()
	start := time.Now()
	out, err := realbk.ServeRank(ep, realbk.ServeOptions{
		Nodes:       len(addrs),
		CFG:         engine.Config{MaxNew: tokens},
		ModelCfg:    cfg,
		Seed:        seed,
		Speculate:   strategy == engine.StrategyPipeInfer,
		DraftNoise:  float32(noise),
		KVCells:     kvCells,
		KVPageSize:  kvPage,
		PrefixCache: prefix,
		RunTimeout:  runTimeout,
		MaxQueue:    slo.maxQueue,
		Obs:         reg,
		Requests:    reqs,
	})
	if err != nil {
		fatal(err)
	}
	if rank != 0 {
		fmt.Fprintf(os.Stderr, "rank %d done\n", rank)
		return
	}
	wall := time.Since(start)
	total := 0
	for i, res := range out.Results {
		if res.Err != nil {
			fmt.Printf("session %d: not served (%v)\n", i, res.Err)
			continue
		}
		total += res.Stats.Generated
		fmt.Printf("session %d: %q (%d tok)\n", i, tk.Decode(res.Tokens), len(res.Tokens))
	}
	fmt.Printf("aggregate: %d tokens in %v (%.1f tok/s); runs: %d launched, %d cancelled\n",
		total, wall.Round(time.Millisecond), float64(total)/wall.Seconds(),
		out.Stats.RunsLaunched, out.Stats.RunsCancelled)
	if prefix && kvCells > 0 {
		promptTokens := 0
		for _, r := range reqs {
			promptTokens += len(r.Prompt)
		}
		fmt.Printf("prefix cache: %d hits reused %d prompt tokens (%.0f%% of prompt work skipped)\n",
			out.Stats.PrefixHits, out.Stats.PrefixHitTokens,
			100*float64(out.Stats.PrefixHitTokens)/float64(max(promptTokens, 1)))
	}
	fmt.Printf("fault tolerance: %d run timeouts, %d recoveries, %d reconnects, %d breaker trips\n",
		out.Stats.RunTimeouts, out.Stats.Recoveries, out.Stats.Reconnects, out.Stats.BreakerTrips)
	if slo.maxQueue > 0 || slo.ttftSLO > 0 || slo.deadline > 0 || out.Stats.Sheds > 0 || out.Stats.Overloads > 0 {
		fmt.Printf("overload control: %d shed on TTFT deadline, %d refused at admission\n",
			out.Stats.Sheds, out.Stats.Overloads)
		if scored := out.Stats.DeadlineHits + out.Stats.DeadlineMisses; scored > 0 {
			fmt.Printf("deadlines: %d/%d served requests met every deadline\n", out.Stats.DeadlineHits, scored)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipeinfer-node:", err)
	os.Exit(1)
}
