// Command pipeinfer-node runs one rank of a genuinely distributed
// PipeInfer cluster over TCP. Start one process per rank with identical
// flags (only -rank differs); every rank derives identical model weights
// from the shared seed, so no weight files need distributing. Rank 0 is
// the head: it drives generation and prints the result.
//
// Example (three shells, or backgrounded):
//
//	pipeinfer-node -rank 0 -peers 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072 &
//	pipeinfer-node -rank 1 -peers 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072 &
//	pipeinfer-node -rank 2 -peers 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/pipeinfer/pipeinfer/internal/backend/realbk"
	"github.com/pipeinfer/pipeinfer/internal/comm/tcpcomm"
	"github.com/pipeinfer/pipeinfer/internal/engine"
	"github.com/pipeinfer/pipeinfer/internal/model"
	"github.com/pipeinfer/pipeinfer/internal/token"
)

func main() {
	var (
		rank         = flag.Int("rank", 0, "this process's rank")
		peers        = flag.String("peers", "", "comma-separated host:port per rank, in rank order")
		strategyName = flag.String("strategy", "pipeinfer", "iterative | speculative | pipeinfer")
		tokens       = flag.Int("tokens", 32, "tokens to generate")
		promptText   = flag.String("prompt", "Distributed inference over TCP", "prompt text")
		seed         = flag.Uint64("seed", 7, "shared model weight seed (must match on all ranks)")
		noise        = flag.Float64("noise", 0.01, "draft perturbation")
		layers       = flag.Int("layers", 8, "target model layers")
		timeout      = flag.Duration("timeout", 30*time.Second, "mesh establishment timeout")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 2 || *peers == "" {
		fatal(fmt.Errorf("need -peers with at least two host:port entries"))
	}

	strategies := map[string]engine.Strategy{
		"iterative":   engine.StrategyIterative,
		"speculative": engine.StrategySpeculative,
		"pipeinfer":   engine.StrategyPipeInfer,
	}
	strategy, ok := strategies[*strategyName]
	if !ok {
		fatal(fmt.Errorf("unknown strategy %q", *strategyName))
	}

	cfg := model.TinyConfig()
	cfg.NLayers = *layers
	tk, err := token.NewTokenizer(cfg.VocabSize)
	if err != nil {
		fatal(err)
	}

	ep, err := tcpcomm.Dial(tcpcomm.Config{Rank: *rank, Addrs: addrs, DialTimeout: *timeout})
	if err != nil {
		fatal(err)
	}
	defer ep.Close()
	fmt.Fprintf(os.Stderr, "rank %d/%d connected\n", *rank, len(addrs))

	out, err := realbk.RunRank(ep, realbk.Options{
		Nodes:      len(addrs),
		Strategy:   strategy,
		CFG:        engine.Config{MaxNew: *tokens},
		ModelCfg:   cfg,
		Seed:       *seed,
		DraftNoise: float32(*noise),
		Prompt:     tk.Encode(*promptText),
	})
	if err != nil {
		fatal(err)
	}
	if *rank == 0 {
		fmt.Printf("output: %q\n", tk.Decode(out.Tokens))
		fmt.Printf("speed: %.1f tok/s  TTFT: %v  ITL: %v  acceptance: %.0f%%  cancelled: %d/%d runs\n",
			out.Stats.Speed(), out.Stats.TTFT().Round(time.Microsecond),
			out.Stats.ITL().Round(time.Microsecond), out.Stats.AcceptanceRate()*100,
			out.Stats.RunsCancelled, out.Stats.RunsLaunched)
	} else {
		fmt.Fprintf(os.Stderr, "rank %d done\n", *rank)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipeinfer-node:", err)
	os.Exit(1)
}
