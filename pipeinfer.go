// Package pipeinfer is a from-scratch Go reproduction of "PipeInfer:
// Accelerating LLM Inference using Asynchronous Pipelined Speculation"
// (Butler, Yu, Mazaheri, Jannesari — SC 2024).
//
// The library provides three pipeline-parallel inference strategies —
// naive iterative, speculative (SpecInfer-style), and PipeInfer's
// continuous asynchronous speculation — implemented once against
// backend-neutral interfaces and executable on two substrates:
//
//   - a real compute backend (Generate): a pure-Go decoder-only
//     transformer running tiny deterministic models across goroutine
//     pipeline stages, used to validate that all strategies produce
//     bit-identical greedy output;
//
//   - a simulated cluster backend (Simulate): a deterministic
//     discrete-event simulation with calibrated hardware cost models for
//     the paper's testbeds, used to regenerate every figure of the
//     evaluation at 70B-180B scale.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for
// paper-versus-measured results of every table and figure.
package pipeinfer

import (
	"github.com/pipeinfer/pipeinfer/internal/backend/realbk"
	"github.com/pipeinfer/pipeinfer/internal/backend/simbk"
	"github.com/pipeinfer/pipeinfer/internal/cost"
	"github.com/pipeinfer/pipeinfer/internal/engine"
	"github.com/pipeinfer/pipeinfer/internal/harness"
	"github.com/pipeinfer/pipeinfer/internal/model"
	"github.com/pipeinfer/pipeinfer/internal/serve"
	"github.com/pipeinfer/pipeinfer/internal/token"
	"github.com/pipeinfer/pipeinfer/internal/trace"
)

// Strategy selects the inference algorithm.
type Strategy = engine.Strategy

// The three strategies compared throughout the paper.
const (
	Iterative   = engine.StrategyIterative
	Speculative = engine.StrategySpeculative
	PipeInfer   = engine.StrategyPipeInfer
)

// Config exposes the engine's tunables (micro-batch size, confidence
// cutoff and its recovery/decay factors, sequence partitions, ablation
// switches). The zero value selects the reference configuration.
type Config = engine.Config

// Stats carries the paper's evaluation metrics for one generation:
// generation speed, TTFT, ITL, acceptance rate, cancellation counts.
type Stats = engine.Stats

// Token is a vocabulary index.
type Token = token.Token

// Tokenizer is the byte-level tokenizer used with the real backend.
type Tokenizer = token.Tokenizer

// NewTokenizer returns a tokenizer for the given vocabulary size.
func NewTokenizer(vocabSize int) (*Tokenizer, error) { return token.NewTokenizer(vocabSize) }

// ModelConfig describes a real (tiny) transformer architecture.
type ModelConfig = model.Config

// TinyModel returns the default small architecture for real-backend runs.
func TinyModel() ModelConfig { return model.TinyConfig() }

// GenerateOptions configures a real-compute generation.
type GenerateOptions = realbk.Options

// GenerateResult is the outcome of a real-compute generation.
type GenerateResult = realbk.Outcome

// Generate runs a generation with real tensor computation across an
// in-process pipeline of Nodes goroutine stages.
func Generate(opts GenerateOptions) (GenerateResult, error) { return realbk.Run(opts) }

// ReferenceGreedy returns the single-model greedy output that every
// strategy must reproduce exactly under greedy sampling.
func ReferenceGreedy(opts GenerateOptions, maxNew int) ([]Token, error) {
	return realbk.ReferenceGreedy(opts, maxNew)
}

// ServeRequest is one queued generation request for the serving layer.
type ServeRequest = serve.Request

// ServeResult is one served request's outcome (tokens plus per-session
// §V-A metrics). A request that was not served — invalid, refused by
// admission control, or shed on an unmeetable TTFT deadline — carries a
// sentinel-wrapped error instead of tokens; no request settles silently.
type ServeResult = serve.Result

// Sentinel errors a ServeResult.Err wraps (match with errors.Is): an
// invalid request, one refused by overload admission control, and one
// shed because its TTFT deadline became provably unmeetable.
var (
	ErrServeInvalid    = serve.ErrInvalid
	ErrServeOverloaded = serve.ErrOverloaded
	ErrServeShed       = serve.ErrShedDeadline
)

// ServeOptions configures a real-compute serving run: N concurrent
// requests multiplexed over one shared pipeline with continuous session
// scheduling and optional per-session speculation.
type ServeOptions = realbk.ServeOptions

// ServeOutcome bundles per-request results with aggregate stats.
type ServeOutcome = realbk.ServeOutcome

// Serve runs the multi-request serving layer on the real backend: the
// pipeline is built once and every queued request is admitted to a
// session slot as one frees up, each session's output remaining
// bit-identical to its serial greedy reference. Stage KV caches are
// paged (internal/kvpage) and may be oversubscribed via
// ServeOptions.KVCells: under memory pressure the scheduler drops
// speculative pages, preempts idle sessions (evicting their KV
// pipeline-wide), and readmits parked requests by recomputing their
// prefix — still bit-identical. See internal/serve for the
// session/namespace contract and the pressure protocol.
func Serve(opts ServeOptions) (ServeOutcome, error) { return realbk.Serve(opts) }

// SimulateServeOptions configures a simulated multi-tenant serving run
// (paper-scale clusters, virtual time).
type SimulateServeOptions = simbk.ServeOptions

// SimulateServeOutcome is the simulated serving result.
type SimulateServeOutcome = simbk.ServeOutcome

// SimulateServe runs the serving layer on the discrete-event cluster
// simulator, which is how multi-tenant scheduling is measured at 70B
// scale without 70B hardware.
func SimulateServe(opts SimulateServeOptions) (SimulateServeOutcome, error) {
	return simbk.Serve(opts)
}

// SimulateOptions configures a simulated-cluster generation.
type SimulateOptions = simbk.Options

// SimulateResult is the outcome of a simulated generation.
type SimulateResult = simbk.Outcome

// Simulate runs a generation on the discrete-event cluster simulator with
// paper-scale model and hardware presets.
func Simulate(opts SimulateOptions) (SimulateResult, error) { return simbk.Run(opts) }

// Cluster and interconnect presets (paper Table II / IV).
var (
	ClusterA   = cost.ClusterA
	ClusterB   = cost.ClusterB
	ClusterC   = cost.ClusterC
	GPUCluster = cost.GPUCluster
)

// ModelPair couples a target and draft model with the pair's calibrated
// acceptance rate (paper Tables I and III).
type ModelPair = cost.Pair

// Model pair presets in figure order.
var (
	CPUPairs = cost.CPUPairs
	GPUPairs = cost.GPUPairs
)

// ExperimentParams scales a figure regeneration (repetitions, generated
// tokens, prompt length).
type ExperimentParams = harness.Params

// PaperParams returns the full paper-scale experiment parameters
// (10 repetitions, 512 tokens, 128-token prompts).
func PaperParams() ExperimentParams { return harness.Paper() }

// Figure is a regenerated experiment result with a text rendering.
type Figure = harness.Figure

// Trace records pipeline execution timelines (Fig 3-style).
type Trace = trace.Recorder

// NewTrace creates an empty timeline recorder to attach to
// SimulateOptions.Trace.
func NewTrace() *Trace { return trace.New() }
